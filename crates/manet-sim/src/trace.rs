//! Bounded event tracing for debugging simulations.
//!
//! A [`Trace`] is a ring buffer of the most recent simulation events.
//! It is off by default (zero capacity) so the hot path stays free of
//! allocation; tests and debugging sessions enable it with
//! [`World::enable_trace`](crate::World::enable_trace).

use crate::faults::DropCause;
use crate::observer::{FlowKind, FlowStage};
use crate::{MsgCategory, NodeId, SimDuration, SimTime};
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;

/// One traced simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A unicast was sent (`hops` = charged path length).
    Unicast {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Traffic category.
        category: MsgCategory,
        /// Charged hops.
        hops: u32,
    },
    /// A bounded or global flood was sent.
    Broadcast {
        /// Originator.
        from: NodeId,
        /// Hop bound (`None` = component-wide flood).
        k: Option<u32>,
        /// Traffic category.
        category: MsgCategory,
        /// Number of recipients.
        recipients: usize,
        /// Charged transmissions.
        charge: u64,
    },
    /// A node joined the network.
    Join {
        /// The node.
        node: NodeId,
    },
    /// A node was removed.
    Remove {
        /// The node.
        node: NodeId,
    },
    /// The fault plane dropped a scheduled delivery.
    FaultDrop {
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
        /// Traffic category.
        category: MsgCategory,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// The fault plane added extra latency to a delivery.
    FaultDelay {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Injected extra latency.
        by: SimDuration,
    },
    /// The fault plane delivered extra copies of a message.
    FaultDuplicate {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Number of extra copies.
        copies: u32,
    },
    /// A scheduled crash (or head kill) removed a node.
    Crash {
        /// The node that died.
        node: NodeId,
    },
    /// A crashed node restarted as a fresh joiner.
    Restart {
        /// The node that came back.
        node: NodeId,
    },
    /// A flow span: one lifecycle stage of a correlation-ID-stamped
    /// protocol flow (see [`crate::observer`]).
    Flow {
        /// Correlation ID shared by every stage of the flow.
        flow: u64,
        /// What the flow is doing (join, reclaim, merge).
        kind: FlowKind,
        /// The node the flow concerns.
        node: NodeId,
        /// The lifecycle stage reached.
        stage: FlowStage,
    },
}

/// A timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.event {
            TraceEvent::Unicast {
                from,
                to,
                category,
                hops,
            } => write!(f, "[{}] {from} -> {to} ({category}, {hops} hops)", self.at),
            TraceEvent::Broadcast {
                from,
                k,
                category,
                recipients,
                charge,
            } => match k {
                Some(k) => write!(
                    f,
                    "[{}] {from} bcast k={k} ({category}, {recipients} rcpt, {charge} tx)",
                    self.at
                ),
                None => write!(
                    f,
                    "[{}] {from} flood ({category}, {recipients} rcpt, {charge} tx)",
                    self.at
                ),
            },
            TraceEvent::Join { node } => write!(f, "[{}] {node} joined", self.at),
            TraceEvent::Remove { node } => write!(f, "[{}] {node} removed", self.at),
            TraceEvent::FaultDrop {
                from,
                to,
                category,
                cause,
            } => write!(
                f,
                "[{}] fault drop {from} -> {to} ({category}, {cause})",
                self.at
            ),
            TraceEvent::FaultDelay { from, to, by } => {
                write!(f, "[{}] fault delay {from} -> {to} (+{by})", self.at)
            }
            TraceEvent::FaultDuplicate { from, to, copies } => {
                write!(
                    f,
                    "[{}] fault dup {from} -> {to} (x{copies} extra)",
                    self.at
                )
            }
            TraceEvent::Crash { node } => write!(f, "[{}] {node} crashed", self.at),
            TraceEvent::Restart { node } => write!(f, "[{}] {node} restarted", self.at),
            TraceEvent::Flow {
                flow,
                kind,
                node,
                stage,
            } => write!(f, "[{}] flow#{flow} {kind} {node} {stage}", self.at),
        }
    }
}

impl TraceRecord {
    /// Renders the record as one line of JSON (the JSONL export format).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"at_us\":{}", self.at.as_micros());
        match &self.event {
            TraceEvent::Unicast {
                from,
                to,
                category,
                hops,
            } => {
                let _ = write!(
                    s,
                    ",\"event\":\"unicast\",\"from\":{},\"to\":{},\"category\":\"{category}\",\"hops\":{hops}",
                    from.index(),
                    to.index()
                );
            }
            TraceEvent::Broadcast {
                from,
                k,
                category,
                recipients,
                charge,
            } => {
                let _ = write!(
                    s,
                    ",\"event\":\"broadcast\",\"from\":{},\"category\":\"{category}\",\"recipients\":{recipients},\"charge\":{charge}",
                    from.index()
                );
                if let Some(k) = k {
                    let _ = write!(s, ",\"k\":{k}");
                }
            }
            TraceEvent::Join { node } => {
                let _ = write!(s, ",\"event\":\"join\",\"node\":{}", node.index());
            }
            TraceEvent::Remove { node } => {
                let _ = write!(s, ",\"event\":\"remove\",\"node\":{}", node.index());
            }
            TraceEvent::FaultDrop {
                from,
                to,
                category,
                cause,
            } => {
                let _ = write!(
                    s,
                    ",\"event\":\"fault_drop\",\"from\":{},\"to\":{},\"category\":\"{category}\",\"cause\":\"{cause}\"",
                    from.index(),
                    to.index()
                );
            }
            TraceEvent::FaultDelay { from, to, by } => {
                let _ = write!(
                    s,
                    ",\"event\":\"fault_delay\",\"from\":{},\"to\":{},\"by_us\":{}",
                    from.index(),
                    to.index(),
                    by.as_micros()
                );
            }
            TraceEvent::FaultDuplicate { from, to, copies } => {
                let _ = write!(
                    s,
                    ",\"event\":\"fault_duplicate\",\"from\":{},\"to\":{},\"copies\":{copies}",
                    from.index(),
                    to.index()
                );
            }
            TraceEvent::Crash { node } => {
                let _ = write!(s, ",\"event\":\"crash\",\"node\":{}", node.index());
            }
            TraceEvent::Restart { node } => {
                let _ = write!(s, ",\"event\":\"restart\",\"node\":{}", node.index());
            }
            TraceEvent::Flow {
                flow,
                kind,
                node,
                stage,
            } => {
                let _ = write!(
                    s,
                    ",\"event\":\"flow\",\"flow\":{flow},\"kind\":\"{kind}\",\"node\":{},\"stage\":\"{}\"",
                    node.index(),
                    stage.name()
                );
                match stage {
                    FlowStage::VotesGathered { grants, refusals } => {
                        let _ = write!(s, ",\"grants\":{grants},\"refusals\":{refusals}");
                    }
                    FlowStage::Retry { attempt } => {
                        let _ = write!(s, ",\"attempt\":{attempt}");
                    }
                    _ => {}
                }
            }
        }
        s.push('}');
        s
    }
}

/// A bounded ring buffer of recent [`TraceRecord`]s.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl Trace {
    /// Creates a trace retaining at most `capacity` records (0 disables).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            capacity,
            records: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Returns `true` if tracing is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event (drops the oldest when full).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { at, event });
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained records, one per line.
    #[must_use]
    pub fn render(&self) -> String {
        self.records
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Exports the retained records as JSON Lines — one JSON object per
    /// record, oldest first, suitable for `jq` or log ingestion.
    ///
    /// # Example
    ///
    /// ```
    /// use manet_sim::trace::{Trace, TraceEvent};
    /// use manet_sim::{NodeId, SimTime};
    ///
    /// let mut t = Trace::with_capacity(8);
    /// t.record(SimTime::ZERO, TraceEvent::Join { node: NodeId::new(1) });
    /// assert_eq!(t.to_jsonl(), "{\"at_us\":0,\"event\":\"join\",\"node\":1}\n");
    /// ```
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent::Join {
            node: NodeId::new(n),
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        assert!(!t.is_enabled());
        t.record(SimTime::ZERO, ev(1));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::with_capacity(3);
        for i in 0..5 {
            t.record(SimTime::from_micros(i), ev(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.records().next().unwrap();
        assert_eq!(first.at, SimTime::from_micros(2));
    }

    #[test]
    fn render_formats_events() {
        let mut t = Trace::with_capacity(8);
        t.record(
            SimTime::from_micros(1_000_000),
            TraceEvent::Unicast {
                from: NodeId::new(1),
                to: NodeId::new(2),
                category: MsgCategory::Configuration,
                hops: 3,
            },
        );
        t.record(
            SimTime::from_micros(2_000_000),
            TraceEvent::Broadcast {
                from: NodeId::new(1),
                k: None,
                category: MsgCategory::Reclamation,
                recipients: 9,
                charge: 10,
            },
        );
        let s = t.render();
        assert!(s.contains("n1 -> n2"));
        assert!(s.contains("3 hops"));
        assert!(s.contains("flood"));
        assert!(s.contains("9 rcpt"));
    }

    #[test]
    fn fault_events_render() {
        let mut t = Trace::with_capacity(8);
        t.record(
            SimTime::from_micros(1),
            TraceEvent::FaultDrop {
                from: NodeId::new(1),
                to: NodeId::new(2),
                category: MsgCategory::Configuration,
                cause: DropCause::Jam,
            },
        );
        t.record(
            SimTime::from_micros(2),
            TraceEvent::Crash {
                node: NodeId::new(3),
            },
        );
        t.record(
            SimTime::from_micros(3),
            TraceEvent::Restart {
                node: NodeId::new(3),
            },
        );
        let s = t.render();
        assert!(s.contains("fault drop"));
        assert!(s.contains("jam"));
        assert!(s.contains("n3 crashed"));
        assert!(s.contains("n3 restarted"));
    }

    #[test]
    fn flow_events_render_and_export() {
        let mut t = Trace::with_capacity(8);
        t.record(
            SimTime::from_micros(9),
            TraceEvent::Flow {
                flow: 7,
                kind: FlowKind::Join,
                node: NodeId::new(3),
                stage: FlowStage::VotesGathered {
                    grants: 2,
                    refusals: 1,
                },
            },
        );
        t.record(
            SimTime::from_micros(11),
            TraceEvent::Flow {
                flow: 7,
                kind: FlowKind::Join,
                node: NodeId::new(3),
                stage: FlowStage::Assigned,
            },
        );
        let s = t.render();
        assert!(s.contains("flow#7 join n3 votes_gathered (2 grants, 1 refusals)"));
        assert!(s.contains("flow#7 join n3 assigned"));
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"at_us\":9,\"event\":\"flow\",\"flow\":7,\"kind\":\"join\",\"node\":3,\"stage\":\"votes_gathered\",\"grants\":2,\"refusals\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"at_us\":11,\"event\":\"flow\",\"flow\":7,\"kind\":\"join\",\"node\":3,\"stage\":\"assigned\"}"
        );
    }

    #[test]
    fn jsonl_export_is_one_object_per_line() {
        let mut t = Trace::with_capacity(8);
        t.record(
            SimTime::from_micros(5),
            TraceEvent::Unicast {
                from: NodeId::new(1),
                to: NodeId::new(2),
                category: MsgCategory::Configuration,
                hops: 3,
            },
        );
        t.record(
            SimTime::from_micros(7),
            TraceEvent::FaultDelay {
                from: NodeId::new(1),
                to: NodeId::new(2),
                by: crate::SimDuration::from_millis(4),
            },
        );
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"at_us\":5,\"event\":\"unicast\",\"from\":1,\"to\":2,\"category\":\"configuration\",\"hops\":3}"
        );
        assert_eq!(
            lines[1],
            "{\"at_us\":7,\"event\":\"fault_delay\",\"from\":1,\"to\":2,\"by_us\":4000}"
        );
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
