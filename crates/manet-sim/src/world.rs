use crate::engine::{EngineConfig, TopologyMaintainer};
use crate::event::{EventKind, Scheduled};
use crate::faults::{AttackKind, DeliveryFate, FaultPlan, FaultState};
use crate::mobility::{MobilityConfig, MobilityModel, MobilityState, RetargetCtx};
use crate::observer::{FlowKind, FlowStage, Observer};
use crate::topology::Topology;
use crate::trace::{Trace, TraceEvent};
use crate::TimerId;
use crate::{
    Arena, Metrics, MsgCategory, NetBackend, NodeId, Point, ProtoMsg, SendError, SimDuration,
    SimRng, SimTime, Transcript,
};
use proto_io::Input;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

/// Static parameters of a simulation run.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Simulation area (paper: 1 km × 1 km).
    pub arena: Arena,
    /// Radio transmission range in meters (paper: 150 m baseline).
    pub range: f64,
    /// Node speed once configured, m/s (paper: 20 m/s). Zero disables
    /// mobility.
    pub speed: f64,
    /// Movement policy once configured (paper: random waypoint). Only
    /// consulted when `speed` is positive.
    pub mobility: MobilityConfig,
    /// Virtual time one hop takes (per-hop transmission + processing).
    pub hop_delay: SimDuration,
    /// Per-message delivery loss probability in `[0, 1]`. The paper
    /// assumes reliable in-range delivery (0.0, the default); non-zero
    /// values are the robustness ablation — transmissions are still
    /// charged, deliveries silently vanish.
    pub loss_rate: f64,
    /// Topology-cache quantum: within one quantum the connectivity
    /// snapshot is reused instead of rebuilt per event. At the paper's
    /// 20 m/s a node moves 2 m per default 100 ms quantum — noise next
    /// to the 150 m radio range — while large simulations get orders of
    /// magnitude fewer O(n²) rebuilds. Set to zero to rebuild per
    /// instant.
    pub topology_quantum: SimDuration,
    /// Topology maintenance strategy (full rebuild, dirty-strip
    /// incremental, or thread-parallel row scans). All engines produce
    /// byte-identical snapshots; the default full engine is the
    /// historical behavior every pinned fingerprint was captured under.
    pub engine: EngineConfig,
    /// RNG seed; runs with equal configs and scenarios are bit-identical.
    pub seed: u64,
    /// Deterministic fault-injection plan (empty by default). Non-empty
    /// plans draw from their own seeded RNG, so enabling faults never
    /// perturbs the main random stream — and an empty plan costs
    /// nothing, keeping fault-free runs bit-identical.
    pub fault_plan: FaultPlan,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            arena: Arena::default(),
            range: 150.0,
            speed: 20.0,
            mobility: MobilityConfig::RandomWaypoint,
            hop_delay: SimDuration::from_millis(5),
            loss_rate: 0.0,
            topology_quantum: SimDuration::from_millis(100),
            engine: EngineConfig::default(),
            seed: 0,
            fault_plan: FaultPlan::default(),
        }
    }
}

/// Node state in struct-of-arrays layout: each per-node attribute is
/// its own column, so the hot loops — collecting alive positions for a
/// topology rebuild, scanning liveness — stream through one dense
/// array instead of striding over a wide per-node struct. Columns grow
/// in lockstep; a node's id is its index in every column.
#[derive(Debug, Default)]
struct NodeTable {
    alive: Vec<bool>,
    /// Created but not yet joined (scheduled arrival).
    dormant: Vec<bool>,
    configured: Vec<bool>,
    mobility: Vec<MobilityState>,
    mobility_epoch: Vec<u64>,
    joined_at: Vec<SimTime>,
}

impl NodeTable {
    fn len(&self) -> usize {
        self.alive.len()
    }

    /// Appends a dormant, unconfigured, parked node; returns its index.
    fn push_parked(&mut self, pos: Point) -> usize {
        self.alive.push(false);
        self.dormant.push(true);
        self.configured.push(false);
        self.mobility.push(MobilityState::parked(pos));
        self.mobility_epoch.push(0);
        self.joined_at.push(SimTime::ZERO);
        self.alive.len() - 1
    }

    /// The column index of `node`, if it exists.
    fn idx(&self, node: NodeId) -> Option<usize> {
        let i = node.index() as usize;
        (i < self.len()).then_some(i)
    }
}

/// The simulated network: virtual time, nodes, radio, event queue, and
/// measurement sink. Protocols interact with the simulation exclusively
/// through this type.
///
/// A *shadow transport*: realizes every logical delivery as real I/O
/// before it is scheduled.
///
/// When installed via [`World::set_wire_shadow`], the world calls
/// [`carry`](WireShadow::carry) at its single delivery choke point with
/// one deterministic shortest path per `(sender, recipient)` pair. The
/// shadow moves the message hop-by-hop over its own medium (the UDP
/// mesh backend moves real datagrams between per-node sockets) and
/// returns the copy decoded at the destination — *that* copy is what
/// gets delivered, so a lossy or lying transport shows up as a
/// transcript divergence, not a silently patched-over bug.
///
/// The shadow must not touch virtual time, the world RNG, or the event
/// queue: scheduling stays byte-identical with and without a shadow.
pub trait WireShadow<M>: fmt::Debug + Send {
    /// Carries `msg` along `path` (consecutive one-hop neighbors,
    /// sender first, recipient last; a single-element path is a
    /// self-delivery) and returns the message as decoded by the
    /// recipient.
    fn carry(&mut self, path: &[NodeId], category: MsgCategory, msg: &M) -> M;
}

/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct World<M> {
    config: WorldConfig,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<M>>,
    nodes: NodeTable,
    maintainer: TopologyMaintainer,
    rng: SimRng,
    metrics: Metrics,
    cancelled_timers: HashSet<TimerId>,
    next_timer: u64,
    topo_cache: Option<(SimTime, u64, Topology)>,
    topo_version: u64,
    trace: Trace,
    observer: Observer,
    faults: Option<Box<FaultState>>,
    mobility_model: Box<dyn MobilityModel>,
    transcript: Option<Transcript>,
    shadow: Option<Box<dyn WireShadow<M>>>,
}

impl<M: Clone + fmt::Debug> World<M> {
    pub(crate) fn new(config: WorldConfig) -> Self {
        let rng = SimRng::seed_from(config.seed);
        let faults = (!config.fault_plan.is_empty())
            .then(|| Box::new(FaultState::new(config.fault_plan.clone())));
        let mobility_model = config.mobility.build(config.seed);
        let maintainer = TopologyMaintainer::new(&config.engine);
        let mut world = World {
            config,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: NodeTable::default(),
            maintainer,
            rng,
            metrics: Metrics::new(),
            cancelled_timers: HashSet::new(),
            next_timer: 0,
            topo_cache: None,
            topo_version: 0,
            trace: Trace::default(),
            observer: Observer::default(),
            faults,
            mobility_model,
            transcript: None,
            shadow: None,
        };
        world.schedule_fault_events();
        world
    }

    /// Queues the plan's scheduled faults (crashes, restarts, head
    /// kills) as ordinary events so they interleave deterministically
    /// with protocol traffic.
    fn schedule_fault_events(&mut self) {
        let Some(fs) = self.faults.as_ref() else {
            return;
        };
        let plan = fs.plan().clone();
        for crash in &plan.crashes {
            self.push_at(crash.at, EventKind::Crash { node: crash.node });
            if let Some(restart_at) = crash.restart_at {
                self.push_at(restart_at, EventKind::Restart { node: crash.node });
            }
        }
        for kill in &plan.head_kills {
            self.push_at(kill.at, EventKind::HeadKill { count: kill.count });
        }
    }

    /// Enables event tracing, retaining up to `capacity` records.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::with_capacity(capacity);
    }

    /// The event trace (empty unless enabled).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enables flow-span observation (off by default; a disabled
    /// observer costs one branch per [`World::flow_event`] call).
    pub fn enable_observer(&mut self) {
        self.observer = Observer::enabled();
    }

    /// The flow observer (disabled unless
    /// [`World::enable_observer`] was called).
    #[must_use]
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Reports a flow lifecycle stage for `(kind, node)`.
    ///
    /// No-op while the observer is disabled. When enabled, the stage is
    /// stamped with the flow's correlation ID, tallied in the
    /// [`Observer`], and recorded into the [`Trace`] (if that is also
    /// enabled) as a [`TraceEvent::Flow`] — so a chaos failure can be
    /// replayed as a per-flow timeline from the JSONL export.
    pub fn flow_event(&mut self, kind: FlowKind, node: NodeId, stage: FlowStage) {
        if !self.observer.is_enabled() {
            return;
        }
        if let Some(flow) = self.observer.observe(kind, node, stage) {
            self.trace.record(
                self.now,
                TraceEvent::Flow {
                    flow,
                    kind,
                    node,
                    stage,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The simulation arena.
    #[must_use]
    pub fn arena(&self) -> Arena {
        self.config.arena
    }

    /// Radio transmission range in meters.
    #[must_use]
    pub fn range(&self) -> f64 {
        self.config.range
    }

    /// The run's configuration.
    #[must_use]
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The measurement sink.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the measurement sink (protocols record latency
    /// samples here).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The deterministic RNG.
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Returns `true` if `node` exists and is alive.
    #[must_use]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes.idx(node).is_some_and(|i| self.nodes.alive[i])
    }

    /// Returns `true` if `node` has been marked configured.
    #[must_use]
    pub fn is_configured(&self, node: NodeId) -> bool {
        self.nodes
            .idx(node)
            .is_some_and(|i| self.nodes.configured[i])
    }

    /// When `node` joined the network (meaningless for dormant nodes).
    #[must_use]
    pub fn joined_at(&self, node: NodeId) -> Option<SimTime> {
        self.nodes
            .idx(node)
            .filter(|&i| self.nodes.alive[i])
            .map(|i| self.nodes.joined_at[i])
    }

    /// Position of `node` right now, if alive.
    #[must_use]
    pub fn position(&self, node: NodeId) -> Option<Point> {
        self.nodes
            .idx(node)
            .filter(|&i| self.nodes.alive[i])
            .map(|i| self.nodes.mobility[i].position(self.now))
    }

    /// All alive node ids, ascending.
    #[must_use]
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId::new(i as u64))
            .collect()
    }

    /// Number of alive nodes.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.nodes.alive.iter().filter(|&&a| a).count()
    }

    // ------------------------------------------------------------------
    // Topology queries
    // ------------------------------------------------------------------

    /// A connectivity snapshot for the current instant. Cached for the
    /// configured quantum (and until membership/mobility changes).
    ///
    /// The snapshot is built with the spatial-grid engine and carries
    /// its own memoized per-source BFS distance vectors and component
    /// partition (see [`topology`](crate::topology)), so repeated
    /// `hops`/`within`/`distances_from`/`component_of` queries within
    /// one quantum traverse the graph once. Those memo caches share
    /// this cache's `(quantum bucket, topo_version)` key by
    /// construction: any membership or mobility change bumps
    /// `topo_version`, which drops the snapshot and its caches with it.
    pub fn topology(&mut self) -> &Topology {
        let quantum = self.config.topology_quantum.as_micros();
        let bucket = self
            .now
            .as_micros()
            .checked_div(quantum)
            .map_or(self.now, |b| SimTime::from_micros(b * quantum));
        let key = (bucket, self.topo_version);
        let stale = !matches!(&self.topo_cache, Some((t, v, _)) if (*t, *v) == key);
        if stale {
            self.metrics.perf_mut().topo_builds += 1;
            let now = self.now;
            let positions: Vec<(NodeId, Point)> = self
                .nodes
                .alive
                .iter()
                .enumerate()
                .filter(|(_, &a)| a)
                .map(|(i, _)| (NodeId::new(i as u64), self.nodes.mobility[i].position(now)))
                .collect();
            let topo = self.maintainer.build(&positions, self.config.range);
            self.topo_cache = Some((key.0, key.1, topo));
        } else {
            self.metrics.perf_mut().topo_hits += 1;
        }
        &self.topo_cache.as_ref().expect("cache just filled").2
    }

    /// One-hop neighbors of `node`.
    ///
    /// Materializes a `Vec<NodeId>`; hot paths that only iterate should
    /// use [`Topology::neighbor_indices`] via [`World::topology`]
    /// instead, which borrows the adjacency slice without allocating.
    pub fn neighbors(&mut self, node: NodeId) -> Vec<NodeId> {
        self.topology().neighbors(node)
    }

    /// Degree (one-hop neighbor count) of `node`, without materializing
    /// the neighbor list.
    pub fn degree(&mut self, node: NodeId) -> usize {
        self.topology().neighbor_indices(node).len()
    }

    /// Alive nodes within `k` hops of `node`, with distances.
    pub fn nodes_within(&mut self, node: NodeId, k: u32) -> Vec<(NodeId, u32)> {
        self.topology().within(node, k)
    }

    /// Shortest-path hop count between two alive nodes.
    pub fn hops_between(&mut self, a: NodeId, b: NodeId) -> Option<u32> {
        self.topology().hops(a, b)
    }

    /// The connected component containing `node`.
    pub fn component_of(&mut self, node: NodeId) -> Vec<NodeId> {
        self.topology().component_of(node)
    }

    /// All connected components.
    pub fn components(&mut self) -> Vec<Vec<NodeId>> {
        self.topology().components()
    }

    /// `true` if a scripted position-based fault (an active partition
    /// boundary or jam region) would currently drop deliveries between
    /// `a` and `b`. Radio-range topology is *not* consulted — this is
    /// the fault plane's view only, which [`components`](World::components)
    /// cannot see. Dead or dormant endpoints count as severed. Consults
    /// no RNG, so the answer is a pure function of `(plan, now,
    /// positions)`.
    #[must_use]
    pub fn fault_severed(&self, a: NodeId, b: NodeId) -> bool {
        let (Some(pa), Some(pb)) = (self.position(a), self.position(b)) else {
            return true;
        };
        self.faults
            .as_deref()
            .is_some_and(|fs| fs.severs(self.now, pa, pb))
    }

    // ------------------------------------------------------------------
    // Sending
    // ------------------------------------------------------------------

    /// Sends `msg` from `from` to `to` along the current shortest path.
    /// Charges the hop count to `category` and returns it. Delivery is
    /// scheduled `hops × hop_delay` in the future.
    ///
    /// # Errors
    ///
    /// * [`SendError::SenderDead`] — `from` is not alive,
    /// * [`SendError::Unreachable`] — no path to `to` exists right now
    ///   (nothing is charged).
    pub fn unicast(
        &mut self,
        from: NodeId,
        to: NodeId,
        category: MsgCategory,
        msg: M,
    ) -> Result<u32, SendError> {
        if !self.is_alive(from) {
            return Err(SendError::SenderDead);
        }
        let hops = self
            .topology()
            .hops(from, to)
            .ok_or(SendError::Unreachable)?;
        self.metrics.add_send(category, u64::from(hops));
        self.trace.record(
            self.now,
            TraceEvent::Unicast {
                from,
                to,
                category,
                hops,
            },
        );
        self.schedule_delivery(from, to, hops, category, msg);
        Ok(hops)
    }

    /// Bounded flood: delivers `msg` to every alive node within `k` hops
    /// of `from`. Charges one transmission for the originator plus one per
    /// relaying node (nodes closer than `k` hops), and returns the
    /// recipients.
    ///
    /// # Errors
    ///
    /// Returns [`SendError::SenderDead`] if `from` is not alive.
    pub fn broadcast_within(
        &mut self,
        from: NodeId,
        k: u32,
        category: MsgCategory,
        msg: M,
    ) -> Result<Vec<NodeId>, SendError> {
        if !self.is_alive(from) {
            return Err(SendError::SenderDead);
        }
        let reach = self.topology().within(from, k);
        // Relays: the originator plus every node strictly inside the rim.
        let relays = 1 + reach.iter().filter(|&&(_, d)| d < k).count() as u64;
        self.metrics.add_send(category, relays);
        self.trace.record(
            self.now,
            TraceEvent::Broadcast {
                from,
                k: Some(k),
                category,
                recipients: reach.len(),
                charge: relays,
            },
        );
        let recipients: Vec<NodeId> = reach.iter().map(|&(n, _)| n).collect();
        for (to, d) in reach {
            self.schedule_delivery(from, to, d, category, msg.clone());
        }
        Ok(recipients)
    }

    /// Global flood: delivers `msg` to every node in `from`'s connected
    /// component (classic flooding — every node retransmits once, so the
    /// charge is the component size). Returns the recipients.
    ///
    /// # Errors
    ///
    /// Returns [`SendError::SenderDead`] if `from` is not alive.
    pub fn flood(
        &mut self,
        from: NodeId,
        category: MsgCategory,
        msg: M,
    ) -> Result<Vec<NodeId>, SendError> {
        if !self.is_alive(from) {
            return Err(SendError::SenderDead);
        }
        let dists = self.topology().distances_from(from);
        self.metrics.add_send(category, dists.len() as u64);
        self.trace.record(
            self.now,
            TraceEvent::Broadcast {
                from,
                k: None,
                category,
                recipients: dists.len().saturating_sub(1),
                charge: dists.len() as u64,
            },
        );
        // Deterministic scheduling order: sort by (depth, id) — the
        // BFS result is an unordered map, and event sequence numbers
        // break same-instant ties, so insertion order must be stable.
        let mut ordered: Vec<(NodeId, u32)> = dists.into_iter().collect();
        ordered.sort_unstable_by_key(|&(n, d)| (d, n));
        let mut recipients = Vec::with_capacity(ordered.len().saturating_sub(1));
        for (to, d) in ordered {
            if to == from {
                continue;
            }
            recipients.push(to);
            self.schedule_delivery(from, to, d, category, msg.clone());
        }
        recipients.sort_unstable();
        Ok(recipients)
    }

    /// Draws a loss event. Never touches the RNG at the default zero
    /// rate, so reliable runs stay bit-identical.
    fn lost(&mut self) -> bool {
        self.config.loss_rate > 0.0 && self.rng.chance(self.config.loss_rate)
    }

    /// The single delivery choke point: every unicast, bounded-flood,
    /// and global-flood recipient passes through here. Applies the
    /// legacy `loss_rate` first (on the main RNG, exactly as before the
    /// fault plane existed) and then the fault plan (on its own RNG),
    /// recording injected outcomes in metrics and trace. With no fault
    /// plan this reduces to the original loss-then-push path.
    fn schedule_delivery(
        &mut self,
        from: NodeId,
        to: NodeId,
        dist_hops: u32,
        category: MsgCategory,
        msg: M,
    ) {
        // The shadow transmits unconditionally — a datagram that the
        // logical layer then loses was still physically sent, exactly
        // like a real radio. Loss/fault draws below are untouched.
        let msg = self.shadow_carry(from, to, dist_hops, category, msg);
        if self.lost() {
            return; // charged but never delivered
        }
        let base_at = self.now + self.config.hop_delay * u64::from(dist_hops);
        if self.faults.is_none() {
            self.push_at(base_at, EventKind::Deliver { to, from, msg });
            return;
        }
        let now = self.now;
        let pos = |nodes: &NodeTable, node: NodeId| {
            nodes
                .idx(node)
                .filter(|&i| nodes.alive[i])
                .map(|i| nodes.mobility[i].position(now))
        };
        let from_pos = pos(&self.nodes, from);
        let to_pos = pos(&self.nodes, to);
        let fate = self
            .faults
            .as_mut()
            .expect("fault state checked above")
            .judge(now, category, from_pos, to_pos);
        match fate {
            DeliveryFate::Drop(cause) => {
                self.metrics.faults_mut().dropped += 1;
                self.trace.record(
                    now,
                    TraceEvent::FaultDrop {
                        from,
                        to,
                        category,
                        cause,
                    },
                );
            }
            DeliveryFate::Pass {
                extra,
                duplicates,
                delayed,
            } => {
                if delayed {
                    self.metrics.faults_mut().delayed += 1;
                    self.trace.record(
                        now,
                        TraceEvent::FaultDelay {
                            from,
                            to,
                            by: extra,
                        },
                    );
                }
                if duplicates > 0 {
                    self.metrics.faults_mut().duplicated += u64::from(duplicates);
                    self.trace.record(
                        now,
                        TraceEvent::FaultDuplicate {
                            from,
                            to,
                            copies: duplicates,
                        },
                    );
                }
                let at = base_at + extra;
                for _ in 0..=duplicates {
                    self.push_at(
                        at,
                        EventKind::Deliver {
                            to,
                            from,
                            msg: msg.clone(),
                        },
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Arms a timer on `node` that fires after `delay`, delivering `tag`
    /// to [`Protocol::on_timer`](crate::Protocol::on_timer).
    pub fn set_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId::from_raw(self.next_timer);
        self.next_timer += 1;
        self.push_at(self.now + delay, EventKind::Timer { node, id, tag });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled_timers.insert(id);
    }

    // ------------------------------------------------------------------
    // Node lifecycle & mobility
    // ------------------------------------------------------------------

    /// Creates a node slot at `pos`. Dormant until joined.
    pub(crate) fn create_node(&mut self, pos: Point) -> NodeId {
        let idx = self.nodes.push_parked(self.config.arena.clamp(pos));
        NodeId::new(idx as u64)
    }

    /// Marks a dormant node alive. Returns `false` if it was already
    /// joined or removed.
    pub(crate) fn activate(&mut self, node: NodeId) -> bool {
        let now = self.now;
        let Some(i) = self.nodes.idx(node) else {
            return false;
        };
        if !self.nodes.dormant[i] {
            return false;
        }
        self.nodes.dormant[i] = false;
        self.nodes.alive[i] = true;
        self.nodes.joined_at[i] = now;
        self.topo_version += 1;
        self.trace.record(now, TraceEvent::Join { node });
        true
    }

    /// Removes `node` from the network: it stops receiving messages and
    /// timers, and disappears from the topology. Graceful departures call
    /// this after their handshake completes; abrupt departures are removed
    /// by the simulator before the protocol hears about them.
    pub fn remove_node(&mut self, node: NodeId) {
        let now = self.now;
        if let Some(i) = self.nodes.idx(node) {
            if self.nodes.alive[i] {
                self.nodes.alive[i] = false;
                self.nodes.dormant[i] = false;
                self.topo_version += 1;
                self.trace.record(now, TraceEvent::Remove { node });
            }
        }
    }

    /// Records a fault-plane crash of `node` (metrics + trace). The
    /// actual removal goes through the normal abrupt-leave path.
    pub(crate) fn record_crash(&mut self, node: NodeId) {
        let now = self.now;
        self.metrics.faults_mut().crashes += 1;
        self.trace.record(now, TraceEvent::Crash { node });
    }

    /// Revives a crashed node as a fresh, unconfigured joiner parked at
    /// its last position. Returns `false` if the node is missing, still
    /// alive, or never joined in the first place.
    pub(crate) fn revive(&mut self, node: NodeId) -> bool {
        let now = self.now;
        let Some(i) = self.nodes.idx(node) else {
            return false;
        };
        if self.nodes.alive[i] || self.nodes.dormant[i] {
            return false;
        }
        let pos = self.nodes.mobility[i].position(now);
        self.nodes.mobility[i] = MobilityState::parked(pos);
        self.nodes.mobility_epoch[i] += 1;
        self.nodes.configured[i] = false;
        self.nodes.dormant[i] = true;
        self.metrics.faults_mut().restarts += 1;
        self.trace.record(now, TraceEvent::Restart { node });
        self.activate(node)
    }

    /// The fault plan's dedicated RNG, if a plan is active (used by the
    /// driver to pick head-kill victims deterministically).
    pub(crate) fn fault_rng(&mut self) -> Option<&mut SimRng> {
        self.faults.as_deref_mut().map(FaultState::rng_mut)
    }

    /// The Byzantine role `node` is running right now, if the fault
    /// plan assigns it one whose start time has passed. Protocols under
    /// test consult this at their dispatch points; honest protocols
    /// simply never ask. Consults no RNG and costs one `Option` check
    /// when no fault plan is active.
    #[must_use]
    pub fn attack_role(&self, node: NodeId) -> Option<AttackKind> {
        self.faults
            .as_deref()
            .and_then(|fs| fs.plan().attack_on(node, self.now))
    }

    /// The Byzantine role `node` is *designated* for, even before its
    /// start time (see [`FaultPlan::attack_assigned`]).
    #[must_use]
    pub fn attack_assigned(&self, node: NodeId) -> Option<AttackKind> {
        self.faults
            .as_deref()
            .and_then(|fs| fs.plan().attack_assigned(node))
    }

    /// Marks `node` configured: records the fact and, if the world has a
    /// positive speed, starts movement under the configured
    /// [`MobilityModel`] (the paper's nodes move only "after
    /// configuration with the network").
    pub fn mark_configured(&mut self, node: NodeId) {
        let speed = self.config.speed;
        let Some(i) = self.nodes.idx(node) else {
            return;
        };
        if !self.nodes.alive[i] || self.nodes.configured[i] {
            return;
        }
        self.nodes.configured[i] = true;
        if speed > 0.0 {
            self.start_leg(node);
        }
    }

    /// Consults the mobility model for `node`'s next leg, starts it, and
    /// schedules the waypoint-arrival event. The model draws from the
    /// world's main RNG stream (plus any model-internal state), so runs
    /// stay bit-identical per `(WorldConfig, scenario)`.
    fn start_leg(&mut self, node: NodeId) {
        let now = self.now;
        let arena = self.config.arena;
        let speed = self.config.speed;
        let Some(here) = self
            .nodes
            .idx(node)
            .map(|i| self.nodes.mobility[i].position(now))
        else {
            return;
        };
        let mut rng = self.rng.clone();
        let ctx = RetargetCtx {
            node,
            now,
            here,
            arena: &arena,
            speed,
        };
        let (dest, leg_speed) = self.mobility_model.next_leg(&ctx, &mut rng);
        let dest = arena.clamp(dest);
        let Some(i) = self.nodes.idx(node) else {
            return;
        };
        self.nodes.mobility[i].set_leg(now, here, dest, leg_speed);
        self.nodes.mobility_epoch[i] += 1;
        let epoch = self.nodes.mobility_epoch[i];
        let arrival = self.nodes.mobility[i].arrival();
        self.rng = rng;
        self.topo_version += 1;
        // A model may park a node (e.g. a degenerate street grid); no
        // arrival means no further waypoint events for this epoch.
        if let Some(arrival) = arrival {
            self.push_at(arrival, EventKind::Waypoint { node, epoch });
        }
    }

    /// Stops `node` where it stands.
    pub fn park_node(&mut self, node: NodeId) {
        let now = self.now;
        if let Some(i) = self.nodes.idx(node) {
            self.nodes.mobility[i].park(now);
            self.nodes.mobility_epoch[i] += 1;
            self.topo_version += 1;
        }
    }

    /// Handles a waypoint-arrival event: picks the next leg.
    pub(crate) fn handle_waypoint(&mut self, node: NodeId, epoch: u64) {
        let speed = self.config.speed;
        let Some(i) = self.nodes.idx(node) else {
            return;
        };
        if !self.nodes.alive[i] || self.nodes.mobility_epoch[i] != epoch || speed <= 0.0 {
            return;
        }
        self.start_leg(node);
    }

    // ------------------------------------------------------------------
    // Event queue internals (used by Sim)
    // ------------------------------------------------------------------

    pub(crate) fn push_at(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, kind });
        let depth = self.queue.len() as u64;
        let perf = self.metrics.perf_mut();
        perf.queue_high_water = perf.queue_high_water.max(depth);
    }

    pub(crate) fn pop_due(&mut self, until: SimTime) -> Option<Scheduled<M>> {
        if self.queue.peek().is_some_and(|e| e.at <= until) {
            let ev = self.queue.pop().expect("peeked");
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            self.metrics.perf_mut().events += 1;
            Some(ev)
        } else {
            None
        }
    }

    pub(crate) fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    pub(crate) fn timer_cancelled(&mut self, id: TimerId) -> bool {
        self.cancelled_timers.remove(&id)
    }

    /// Number of events still queued (including cancelled timers).
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

impl<M: Clone + fmt::Debug> World<M> {
    /// Installs a shadow transport (see [`WireShadow`]): from now on
    /// every delivery is first carried over the shadow's medium and the
    /// recipient-decoded copy is what gets scheduled.
    pub fn set_wire_shadow(&mut self, shadow: Box<dyn WireShadow<M>>) {
        self.shadow = Some(shadow);
    }

    /// Whether a shadow transport is installed.
    #[must_use]
    pub fn has_wire_shadow(&self) -> bool {
        self.shadow.is_some()
    }

    /// Reconstructs one deterministic shortest path `from → to` over the
    /// current link map: walk back from the recipient, always picking
    /// the lowest-id neighbor one hop closer to the sender. `dist_hops`
    /// is the recipient's BFS depth (0 for a self-delivery).
    fn shadow_route(&mut self, from: NodeId, to: NodeId, dist_hops: u32) -> Vec<NodeId> {
        if from == to || dist_hops == 0 {
            return vec![from];
        }
        let dists = self.topology().distances_from(from);
        let mut path = vec![to];
        let mut cur = to;
        let mut d = dist_hops;
        while d > 1 {
            let prev = self
                .topology()
                .neighbors(cur)
                .into_iter()
                .filter(|n| dists.get(n) == Some(&(d - 1)))
                .min()
                .expect("BFS predecessor exists on a shortest path");
            path.push(prev);
            cur = prev;
            d -= 1;
        }
        path.push(from);
        path.reverse();
        path
    }

    /// Runs the shadow transport for one `(from, to)` delivery and
    /// returns the message copy the recipient decoded (or the original
    /// when no shadow is installed).
    fn shadow_carry(
        &mut self,
        from: NodeId,
        to: NodeId,
        dist_hops: u32,
        category: MsgCategory,
        msg: M,
    ) -> M {
        if self.shadow.is_none() {
            return msg;
        }
        let path = self.shadow_route(from, to, dist_hops);
        let mut shadow = self.shadow.take().expect("checked above");
        let carried = shadow.carry(&path, category, &msg);
        self.shadow = Some(shadow);
        carried
    }

    /// Enables transcript recording: every input the driver feeds and
    /// every effect the protocol performs through [`Net`](crate::Net)
    /// is appended in canonical form. Off by default (one `Option`
    /// check per effect).
    pub fn enable_transcript(&mut self) {
        self.transcript = Some(Transcript::new());
    }

    /// The recorded transcript, when enabled.
    #[must_use]
    pub fn transcript(&self) -> Option<&Transcript> {
        self.transcript.as_ref()
    }

    /// Takes the transcript out of the world (ends recording).
    pub fn take_transcript(&mut self) -> Option<Transcript> {
        self.transcript.take()
    }
}

impl<M: ProtoMsg> World<M> {
    /// Records one driver-side input when transcribing (the output half
    /// is recorded by [`Net`](crate::Net) as effects happen).
    pub(crate) fn record_input(&mut self, node: NodeId, input: &Input<M>) {
        let now = self.now;
        if let Some(t) = self.transcript.as_mut() {
            t.push_input(now, node, input);
        }
    }
}

/// The simulator as sans-io backend #1: every [`NetBackend`] call
/// forwards to the corresponding inherent method, so protocol effects
/// hit the same choke points (metrics, trace, fault plane, scheduling)
/// they always did, in the same order.
impl<M: ProtoMsg> NetBackend<M> for World<M> {
    fn now(&self) -> SimTime {
        World::now(self)
    }

    fn is_alive(&self, node: NodeId) -> bool {
        World::is_alive(self, node)
    }

    fn is_configured(&self, node: NodeId) -> bool {
        World::is_configured(self, node)
    }

    fn neighbors(&mut self, node: NodeId) -> Vec<NodeId> {
        World::neighbors(self, node)
    }

    fn nodes_within(&mut self, node: NodeId, k: u32) -> Vec<(NodeId, u32)> {
        World::nodes_within(self, node, k)
    }

    fn hops_between(&mut self, a: NodeId, b: NodeId) -> Option<u32> {
        World::hops_between(self, a, b)
    }

    fn distances_from(&mut self, node: NodeId) -> HashMap<NodeId, u32> {
        self.topology().distances_from(node)
    }

    fn component_of(&mut self, node: NodeId) -> Vec<NodeId> {
        World::component_of(self, node)
    }

    fn components(&mut self) -> Vec<Vec<NodeId>> {
        World::components(self)
    }

    fn rng_range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.rng.range_u64(range)
    }

    fn attack_role(&self, node: NodeId) -> Option<AttackKind> {
        World::attack_role(self, node)
    }

    fn attack_assigned(&self, node: NodeId) -> Option<AttackKind> {
        World::attack_assigned(self, node)
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        World::metrics_mut(self)
    }

    fn flow_event(&mut self, kind: FlowKind, node: NodeId, stage: FlowStage) {
        World::flow_event(self, kind, node, stage);
    }

    fn mark_configured(&mut self, node: NodeId) {
        World::mark_configured(self, node);
    }

    fn remove_node(&mut self, node: NodeId) {
        World::remove_node(self, node);
    }

    fn unicast(
        &mut self,
        from: NodeId,
        to: NodeId,
        category: MsgCategory,
        msg: M,
    ) -> Result<u32, SendError> {
        World::unicast(self, from, to, category, msg)
    }

    fn broadcast_within(
        &mut self,
        from: NodeId,
        k: u32,
        category: MsgCategory,
        msg: M,
    ) -> Result<Vec<NodeId>, SendError> {
        World::broadcast_within(self, from, k, category, msg)
    }

    fn flood(
        &mut self,
        from: NodeId,
        category: MsgCategory,
        msg: M,
    ) -> Result<Vec<NodeId>, SendError> {
        World::flood(self, from, category, msg)
    }

    fn set_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64) -> TimerId {
        World::set_timer(self, node, delay, tag)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        World::cancel_timer(self, id);
    }

    fn transcript_mut(&mut self) -> Option<&mut Transcript> {
        self.transcript.as_mut()
    }
}
