//! Flow spans: correlation-ID-stamped protocol lifecycle records.
//!
//! A *flow* is one protocol-level undertaking — a node's attempt to
//! acquire an address, the reclamation of a vanished head's space, a
//! partition-merge reconfiguration. Protocols report lifecycle stages
//! through [`World::flow_event`](crate::World::flow_event); the
//! [`Observer`] stamps each `(kind, node)` pair with a stable
//! correlation ID so the [`trace`](crate::trace) JSONL export can be
//! grouped into per-flow timelines (`jq 'select(.flow == 7)'`), and
//! tallies outcomes for run manifests.
//!
//! Like the zero-capacity [`Trace`](crate::trace::Trace), the observer
//! is off by default: every `flow_event` call is a single branch on a
//! `bool` until [`World::enable_observer`](crate::World::enable_observer)
//! turns it on, so the hot path costs nothing in ordinary figure runs.

use crate::NodeId;
use std::collections::HashMap;

pub use proto_io::{FlowKind, FlowStage};

/// Outcome tallies for one [`FlowKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTally {
    /// Flows opened.
    pub started: u64,
    /// Flows closed with `Assigned`.
    pub assigned: u64,
    /// Flows closed with `Abandoned`.
    pub abandoned: u64,
    /// Flows closed with `Finalized`.
    pub finalized: u64,
    /// Retry stages recorded across all flows of this kind.
    pub retries: u64,
}

impl FlowTally {
    /// Flows opened but not yet closed.
    #[must_use]
    pub fn open(&self) -> u64 {
        self.started
            .saturating_sub(self.assigned + self.abandoned + self.finalized)
    }

    /// Merges another tally into this one (for aggregating independent
    /// replications or sweep shards). Destructures so a newly added
    /// counter cannot be silently dropped.
    pub fn merge(&mut self, other: &FlowTally) {
        let FlowTally {
            started,
            assigned,
            abandoned,
            finalized,
            retries,
        } = other;
        self.started += started;
        self.assigned += assigned;
        self.abandoned += abandoned;
        self.finalized += finalized;
        self.retries += retries;
    }
}

/// Correlation-ID registry and outcome tallies for flow spans.
///
/// Disabled by default; see the [module docs](self) for the cost model.
#[derive(Debug, Clone, Default)]
pub struct Observer {
    enabled: bool,
    next_id: u64,
    open: HashMap<(FlowKind, NodeId), u64>,
    tallies: [FlowTally; 5],
}

impl Observer {
    /// Creates an enabled observer ([`Observer::default`] is disabled).
    #[must_use]
    pub fn enabled() -> Self {
        Observer {
            enabled: true,
            next_id: 0,
            open: HashMap::new(),
            tallies: [FlowTally::default(); 5],
        }
    }

    /// Returns `true` if flow events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Outcome tallies for one flow kind.
    #[must_use]
    pub fn tally(&self, kind: FlowKind) -> &FlowTally {
        &self.tallies[kind.index()]
    }

    /// Flows currently open across all kinds.
    #[must_use]
    pub fn open_flows(&self) -> usize {
        self.open.len()
    }

    /// Registers a stage for `(kind, node)` and returns the flow's
    /// correlation ID, or `None` when the event must not be recorded:
    /// the observer is disabled, or a non-`Started` stage arrived with
    /// no open flow (a stale completion — e.g. a reconfiguration that
    /// never opened a merge flow).
    ///
    /// `Started` opens a flow (re-using the ID if one is already open,
    /// so a restarted join keeps its timeline); terminal stages retire
    /// the ID and bump the outcome tally.
    pub(crate) fn observe(
        &mut self,
        kind: FlowKind,
        node: NodeId,
        stage: FlowStage,
    ) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        let key = (kind, node);
        let id = match self.open.get(&key) {
            Some(&id) => id,
            None => {
                if !matches!(stage, FlowStage::Started) {
                    return None;
                }
                self.next_id += 1;
                let id = self.next_id;
                self.open.insert(key, id);
                self.tallies[kind.index()].started += 1;
                id
            }
        };
        let tally = &mut self.tallies[kind.index()];
        match stage {
            FlowStage::Retry { .. } => tally.retries += 1,
            FlowStage::Assigned => tally.assigned += 1,
            FlowStage::Abandoned => tally.abandoned += 1,
            FlowStage::Finalized => tally.finalized += 1,
            // `FlowStage` is non-exhaustive now that it lives in
            // proto-io; unknown future stages tally nothing.
            _ => {}
        }
        if stage.is_terminal() {
            self.open.remove(&key);
        }
        Some(id)
    }
}

/// Iterates all flow kinds (for manifest rendering).
#[must_use]
pub fn all_kinds() -> [FlowKind; 5] {
    FlowKind::ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn disabled_observer_records_nothing() {
        let mut o = Observer::default();
        assert!(!o.is_enabled());
        assert_eq!(o.observe(FlowKind::Join, n(1), FlowStage::Started), None);
        assert_eq!(o.tally(FlowKind::Join).started, 0);
        assert_eq!(o.open_flows(), 0);
    }

    #[test]
    fn flow_lifecycle_keeps_one_id() {
        let mut o = Observer::enabled();
        let id = o.observe(FlowKind::Join, n(3), FlowStage::Started).unwrap();
        let again = o
            .observe(FlowKind::Join, n(3), FlowStage::Retry { attempt: 1 })
            .unwrap();
        assert_eq!(id, again);
        let done = o
            .observe(FlowKind::Join, n(3), FlowStage::Assigned)
            .unwrap();
        assert_eq!(id, done);
        let t = o.tally(FlowKind::Join);
        assert_eq!((t.started, t.assigned, t.retries), (1, 1, 1));
        assert_eq!(t.open(), 0);
        // The flow is closed: a second Started opens a fresh ID.
        let fresh = o.observe(FlowKind::Join, n(3), FlowStage::Started).unwrap();
        assert_ne!(id, fresh);
    }

    #[test]
    fn stale_completion_without_open_flow_is_dropped() {
        let mut o = Observer::enabled();
        assert_eq!(o.observe(FlowKind::Merge, n(2), FlowStage::Finalized), None);
        assert_eq!(o.tally(FlowKind::Merge).finalized, 0);
    }

    #[test]
    fn kinds_are_tallied_independently() {
        let mut o = Observer::enabled();
        o.observe(FlowKind::Join, n(1), FlowStage::Started);
        o.observe(FlowKind::Reclaim, n(1), FlowStage::Started);
        o.observe(FlowKind::Reclaim, n(1), FlowStage::Finalized);
        assert_eq!(o.tally(FlowKind::Join).open(), 1);
        assert_eq!(o.tally(FlowKind::Reclaim).finalized, 1);
        assert_eq!(o.open_flows(), 1);
    }

    #[test]
    fn restarted_open_flow_reuses_id() {
        let mut o = Observer::enabled();
        let a = o
            .observe(FlowKind::Merge, n(7), FlowStage::Started)
            .unwrap();
        let b = o
            .observe(FlowKind::Merge, n(7), FlowStage::Started)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(o.tally(FlowKind::Merge).started, 1);
    }
}
