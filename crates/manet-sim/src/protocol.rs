use crate::{NodeId, World};
use std::fmt::Debug;

/// A network protocol driven by the simulator.
///
/// One `Protocol` value holds the state of *every* node (the simulator is
/// a single-process model of the whole network); callbacks identify which
/// node the event concerns. Implementations react by querying and sending
/// through the [`World`].
///
/// # Lifecycle
///
/// * [`Protocol::on_join`] — the node has just entered the network
///   (powered on in radio range of whoever is nearby). Protocols usually
///   begin their configuration exchange here.
/// * [`Protocol::on_message`] — a message addressed to `to` arrived.
/// * [`Protocol::on_timer`] — a timer set via
///   [`World::set_timer`](crate::World::set_timer) fired.
/// * [`Protocol::on_leave`] — the node is departing. For graceful leaves
///   the node is still alive and may run its departure handshake; the
///   protocol must eventually call
///   [`World::remove_node`](crate::World::remove_node). For abrupt leaves
///   the node is already dead and can no longer send.
pub trait Protocol {
    /// The protocol's wire message type.
    type Msg: Clone + Debug;

    /// A node has entered the network.
    fn on_join(&mut self, w: &mut World<Self::Msg>, node: NodeId);

    /// A message has been delivered to `to`.
    fn on_message(&mut self, w: &mut World<Self::Msg>, to: NodeId, from: NodeId, msg: Self::Msg);

    /// A timer set by this protocol fired on `node`. `tag` is the value
    /// passed to `set_timer`. Default: ignore.
    fn on_timer(&mut self, w: &mut World<Self::Msg>, node: NodeId, tag: u64) {
        let _ = (w, node, tag);
    }

    /// `node` is leaving. `graceful` nodes are still alive and should run
    /// their departure handshake; abrupt nodes are already dead.
    /// Default: for graceful leaves, remove the node immediately.
    fn on_leave(&mut self, w: &mut World<Self::Msg>, node: NodeId, graceful: bool) {
        if graceful {
            w.remove_node(node);
        }
    }

    /// Whether `node` currently acts as a cluster head (or equivalent
    /// leader/allocator role). The fault plane uses this to resolve
    /// targeted head-kill schedules
    /// ([`faults::HeadKillEvent`](crate::faults::HeadKillEvent)); leaderless
    /// protocols keep the default. Default: no node is a head.
    fn is_cluster_head(&self, node: NodeId) -> bool {
        let _ = node;
        false
    }
}
