use crate::{NodeId, SimTime, TimerId};
use std::cmp::Ordering;

/// What a scheduled event does when it fires.
#[derive(Debug, Clone)]
pub(crate) enum EventKind<M> {
    /// Deliver a protocol message to `to`.
    Deliver { to: NodeId, from: NodeId, msg: M },
    /// Fire a protocol timer on `node`.
    Timer { node: NodeId, id: TimerId, tag: u64 },
    /// A dormant node becomes alive and the protocol is notified.
    Join { node: NodeId },
    /// A node leaves; graceful leaves let the protocol run its departure
    /// handshake, abrupt leaves kill the node first.
    Leave { node: NodeId, graceful: bool },
    /// Random-waypoint arrival: pick the next destination.
    Waypoint { node: NodeId, epoch: u64 },
    /// Fault plane: kill a node abruptly (no departure handshake).
    Crash { node: NodeId },
    /// Fault plane: a crashed node rejoins as a fresh, unconfigured node.
    Restart { node: NodeId },
    /// Fault plane: kill up to `count` current cluster heads.
    HeadKill { count: u32 },
}

/// An event with its firing time and a deterministic FIFO tiebreak.
#[derive(Debug, Clone)]
pub(crate) struct Scheduled<M> {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    /// Reversed so that `BinaryHeap` pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(at: u64, seq: u64) -> Scheduled<()> {
        Scheduled {
            at: SimTime::from_micros(at),
            seq,
            kind: EventKind::Join {
                node: NodeId::new(0),
            },
        }
    }

    #[test]
    fn heap_pops_earliest_first() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(30, 0));
        heap.push(ev(10, 1));
        heap.push(ev(20, 2));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|e| e.at.as_micros())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn same_time_is_fifo_by_seq() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(10, 5));
        heap.push(ev(10, 3));
        heap.push(ev(10, 4));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|e| e.seq)).collect();
        assert_eq!(order, vec![3, 4, 5]);
    }

    #[test]
    fn timer_id_display() {
        assert_eq!(TimerId::from_raw(9).to_string(), "t9");
    }
}
