//! A distance-vector routing substrate (RIP-style).
//!
//! The autoconfiguration paper — like most MANET work — assumes a
//! routing protocol underneath ("most routing protocols assume that
//! mobile nodes are configured with a unique identifier *before* routing
//! can be initiated", §I). The simulator's delivery engine uses an
//! oracle (BFS over the instantaneous topology); this module provides
//! the *distributed* view: per-node routing tables built by iterative
//! neighbor exchange, so experiments can quantify how far a real routing
//! layer lags the oracle under mobility.
//!
//! The implementation is deliberately classic: Bellman-Ford relaxation
//! with split horizon and a RIP-style infinity bound to cut
//! count-to-infinity.

use crate::topology::Topology;
use crate::NodeId;
use std::collections::HashMap;

/// Hop-count metric treated as unreachable (RIP uses 16).
pub const INFINITY: u32 = 16;

/// One node's routing table: destination → (next hop, metric).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoutingTable {
    entries: HashMap<NodeId, (NodeId, u32)>,
}

impl RoutingTable {
    /// The next hop toward `dst`, if a live route exists.
    #[must_use]
    pub fn next_hop(&self, dst: NodeId) -> Option<NodeId> {
        self.entries
            .get(&dst)
            .filter(|(_, m)| *m < INFINITY)
            .map(|(n, _)| *n)
    }

    /// The metric toward `dst` ([`INFINITY`] when unknown/unreachable).
    #[must_use]
    pub fn metric(&self, dst: NodeId) -> u32 {
        self.entries
            .get(&dst)
            .map_or(INFINITY, |(_, m)| (*m).min(INFINITY))
    }

    /// Number of live routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.values().filter(|(_, m)| *m < INFINITY).count()
    }

    /// Returns `true` if no live route exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The distributed routing state of every node, advanced in synchronous
/// exchange rounds.
///
/// # Example
///
/// ```
/// use manet_sim::routing::RoutingMesh;
/// use manet_sim::topology::Topology;
/// use manet_sim::{NodeId, Point};
///
/// let topo = Topology::build(
///     &[
///         (NodeId::new(0), Point::new(0.0, 0.0)),
///         (NodeId::new(1), Point::new(100.0, 0.0)),
///         (NodeId::new(2), Point::new(200.0, 0.0)),
///     ],
///     150.0,
/// );
/// let mut mesh = RoutingMesh::new();
/// let rounds = mesh.converge(&topo, 32);
/// assert!(rounds <= 3);
/// assert_eq!(mesh.table(NodeId::new(0)).unwrap().metric(NodeId::new(2)), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoutingMesh {
    tables: HashMap<NodeId, RoutingTable>,
}

impl RoutingMesh {
    /// Creates an empty mesh; tables are created lazily per node.
    #[must_use]
    pub fn new() -> Self {
        RoutingMesh::default()
    }

    /// A node's table, if it has participated in an exchange.
    #[must_use]
    pub fn table(&self, node: NodeId) -> Option<&RoutingTable> {
        self.tables.get(&node)
    }

    /// Runs one synchronous exchange round over the given topology:
    /// every node advertises its vector to its current neighbors and
    /// relaxes its own table (split horizon: a route is not advertised
    /// back to the neighbor it goes through). Returns `true` if any
    /// table changed.
    pub fn step(&mut self, topo: &Topology) -> bool {
        // Snapshot the tables so the round is synchronous.
        let before = self.tables.clone();
        let mut changed = false;

        let nodes: Vec<NodeId> = topo_nodes(topo);
        for &u in &nodes {
            // One allocation-free adjacency lookup per node; both passes
            // below iterate the same borrowed slice (the old code called
            // `topo.neighbors(u)` twice, materializing two `Vec<NodeId>`
            // per node per round).
            let ui = topo.index_of(u).expect("topo_nodes only yields members");
            let neigh = topo.neighbor_indices_at(ui);
            let mut next = RoutingTable::default();
            // Direct neighbors.
            for &vi in neigh {
                let v = topo.node_at(vi as usize);
                next.entries.insert(v, (v, 1));
            }
            next.entries.insert(u, (u, 0));
            // Advertised vectors from neighbors.
            for &vi in neigh {
                let v = topo.node_at(vi as usize);
                let Some(vt) = before.get(&v) else { continue };
                for (dst, (via, m)) in &vt.entries {
                    if *dst == u {
                        continue;
                    }
                    // Split horizon: ignore routes that go back through us.
                    if *via == u {
                        continue;
                    }
                    let cand = m.saturating_add(1).min(INFINITY);
                    let cur = next.metric(*dst);
                    if cand < cur {
                        next.entries.insert(*dst, (v, cand));
                    }
                }
            }
            if before.get(&u) != Some(&next) {
                changed = true;
            }
            self.tables.insert(u, next);
        }
        // Nodes that vanished from the topology lose their tables.
        let alive: std::collections::HashSet<NodeId> = nodes.into_iter().collect();
        let before_len = self.tables.len();
        self.tables.retain(|n, _| alive.contains(n));
        changed || self.tables.len() != before_len
    }

    /// Steps until quiescent or `max_rounds`; returns rounds taken.
    pub fn converge(&mut self, topo: &Topology, max_rounds: u32) -> u32 {
        for round in 1..=max_rounds {
            if !self.step(topo) {
                return round;
            }
        }
        max_rounds
    }

    /// Fraction of (src, dst) pairs whose table metric matches the BFS
    /// oracle — 1.0 when fully converged on the current topology. Pairs
    /// the oracle deems unreachable count as matching when the table
    /// agrees (metric ≥ [`INFINITY`]).
    #[must_use]
    pub fn agreement_with(&self, topo: &Topology) -> f64 {
        let nodes = topo_nodes(topo);
        if nodes.len() < 2 {
            return 1.0;
        }
        let mut total = 0u64;
        let mut agree = 0u64;
        for &src in &nodes {
            let oracle = topo.distances_from(src);
            let table = self.tables.get(&src);
            for &dst in &nodes {
                if src == dst {
                    continue;
                }
                total += 1;
                let truth = oracle.get(&dst).copied().unwrap_or(INFINITY);
                let ours = table.map_or(INFINITY, |t| t.metric(dst));
                let truth = truth.min(INFINITY);
                if truth == ours {
                    agree += 1;
                }
            }
        }
        agree as f64 / total as f64
    }
}

fn topo_nodes(topo: &Topology) -> Vec<NodeId> {
    topo.components().into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Arena, Point, SimRng};

    fn line(n: u64, spacing: f64) -> Topology {
        let nodes: Vec<(NodeId, Point)> = (0..n)
            .map(|i| (NodeId::new(i), Point::new(i as f64 * spacing, 0.0)))
            .collect();
        Topology::build(&nodes, 150.0)
    }

    #[test]
    fn converges_to_bfs_on_a_line() {
        let topo = line(6, 100.0);
        let mut mesh = RoutingMesh::new();
        let rounds = mesh.converge(&topo, 32);
        // Pinned to the value the pre-grid engine produced: the
        // neighbor-slice rewrite must not change exchange dynamics.
        assert_eq!(rounds, 6, "line of 6 converged in 6 rounds on main");
        assert!((mesh.agreement_with(&topo) - 1.0).abs() < 1e-12);
        // End-to-end route goes through the right next hop.
        let t0 = mesh.table(NodeId::new(0)).unwrap();
        assert_eq!(t0.metric(NodeId::new(5)), 5);
        assert_eq!(t0.next_hop(NodeId::new(5)), Some(NodeId::new(1)));
    }

    #[test]
    fn converges_on_random_layouts() {
        let arena = Arena::default();
        let mut rng = SimRng::seed_from(8);
        let nodes: Vec<(NodeId, Point)> = (0..40)
            .map(|i| (NodeId::new(i), rng.point_in(&arena)))
            .collect();
        let topo = Topology::build(&nodes, 200.0);
        let mut mesh = RoutingMesh::new();
        let rounds = mesh.converge(&topo, 64);
        // Pinned to the pre-grid engine's count (see the line test).
        assert_eq!(rounds, 7, "40-node layout converged in 7 rounds on main");
        assert!(
            (mesh.agreement_with(&topo) - 1.0).abs() < 1e-12,
            "fully converged tables must match the oracle"
        );
    }

    #[test]
    fn step_matches_tables_built_from_materialized_neighbors() {
        // The allocation-free neighbor-slice path must produce the same
        // tables (same next hops, same metrics) as iterating the
        // `Vec<NodeId>` form of the adjacency, on both engine builds.
        let arena = Arena::default();
        let mut rng = SimRng::seed_from(21);
        let nodes: Vec<(NodeId, Point)> = (0..30)
            .map(|i| (NodeId::new(i), rng.point_in(&arena)))
            .collect();
        let grid = Topology::build(&nodes, 180.0);
        let naive = Topology::build_naive(&nodes, 180.0);
        let mut mesh_g = RoutingMesh::new();
        let mut mesh_n = RoutingMesh::new();
        let rounds_g = mesh_g.converge(&grid, 64);
        let rounds_n = mesh_n.converge(&naive, 64);
        assert_eq!(rounds_g, rounds_n, "round counts must match across engines");
        for (id, _) in &nodes {
            assert_eq!(mesh_g.table(*id), mesh_n.table(*id), "table of {id}");
        }
    }

    #[test]
    fn topology_change_makes_tables_stale_until_reconverged() {
        let topo = line(5, 100.0);
        let mut mesh = RoutingMesh::new();
        mesh.converge(&topo, 32);

        // Break the line in the middle.
        let nodes: Vec<(NodeId, Point)> = vec![
            (NodeId::new(0), Point::new(0.0, 0.0)),
            (NodeId::new(1), Point::new(100.0, 0.0)),
            // node 2 jumped far away
            (NodeId::new(2), Point::new(900.0, 900.0)),
            (NodeId::new(3), Point::new(300.0, 0.0)),
            (NodeId::new(4), Point::new(400.0, 0.0)),
        ];
        let broken = Topology::build(&nodes, 150.0);
        let stale = mesh.agreement_with(&broken);
        assert!(stale < 1.0, "tables must be stale right after the change");
        mesh.converge(&broken, 64);
        assert!(
            (mesh.agreement_with(&broken) - 1.0).abs() < 1e-12,
            "reconvergence restores agreement"
        );
    }

    #[test]
    fn unreachable_destinations_are_infinity() {
        let nodes = vec![
            (NodeId::new(0), Point::new(0.0, 0.0)),
            (NodeId::new(1), Point::new(900.0, 900.0)),
        ];
        let topo = Topology::build(&nodes, 150.0);
        let mut mesh = RoutingMesh::new();
        mesh.converge(&topo, 16);
        let t = mesh.table(NodeId::new(0)).unwrap();
        assert_eq!(t.metric(NodeId::new(1)), INFINITY);
        assert_eq!(t.next_hop(NodeId::new(1)), None);
    }

    #[test]
    fn departed_nodes_lose_their_tables() {
        let topo = line(4, 100.0);
        let mut mesh = RoutingMesh::new();
        mesh.converge(&topo, 16);
        assert!(mesh.table(NodeId::new(3)).is_some());
        // Node 3 leaves.
        let topo2 = line(3, 100.0);
        mesh.converge(&topo2, 16);
        assert!(mesh.table(NodeId::new(3)).is_none());
        // Remaining routes to it expire to infinity.
        let t0 = mesh.table(NodeId::new(0)).unwrap();
        assert_eq!(t0.metric(NodeId::new(3)), INFINITY);
    }

    #[test]
    fn empty_and_singleton_meshes_are_trivially_consistent() {
        let mut mesh = RoutingMesh::new();
        let empty = Topology::build(&[], 150.0);
        assert!(!mesh.step(&empty));
        assert_eq!(mesh.agreement_with(&empty), 1.0);

        let one = Topology::build(&[(NodeId::new(0), Point::new(0.0, 0.0))], 150.0);
        mesh.converge(&one, 4);
        assert_eq!(mesh.agreement_with(&one), 1.0);
        // A singleton's table exists; it has no peers to route to.
        assert!(mesh.table(NodeId::new(0)).is_some());
    }
}
