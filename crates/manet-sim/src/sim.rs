use crate::event::EventKind;
use crate::{Input, Net, NodeId, Point, Protocol, SimDuration, SimTime, World, WorldConfig};

/// The simulation driver: owns the [`World`] and the [`Protocol`] and
/// dispatches events to the protocol's callbacks in timestamp order.
///
/// Scenario code (the experiment harness) uses `Sim` to place nodes and
/// schedule arrivals/departures; the protocol reacts through the
/// callbacks. See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Sim<P: Protocol> {
    world: World<P::Msg>,
    protocol: P,
}

impl<P: Protocol> Sim<P> {
    /// Creates a simulation with the given configuration and protocol.
    pub fn new(config: WorldConfig, protocol: P) -> Self {
        Sim {
            world: World::new(config),
            protocol,
        }
    }

    /// The simulated network.
    #[must_use]
    pub fn world(&self) -> &World<P::Msg> {
        &self.world
    }

    /// Mutable access to the network (for scenario-level tweaks).
    pub fn world_mut(&mut self) -> &mut World<P::Msg> {
        &mut self.world
    }

    /// The protocol under simulation.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable access to the protocol (for inspection helpers in tests).
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// Decomposes the simulation into its world and protocol.
    #[must_use]
    pub fn into_parts(self) -> (World<P::Msg>, P) {
        (self.world, self.protocol)
    }

    /// Simultaneous mutable access to world and protocol (e.g. for audits
    /// that read protocol state while querying the topology).
    pub fn parts_mut(&mut self) -> (&mut World<P::Msg>, &mut P) {
        (&mut self.world, &mut self.protocol)
    }

    // ------------------------------------------------------------------
    // Scenario API
    // ------------------------------------------------------------------

    /// Spawns a node at `pos` and joins it immediately (the protocol's
    /// `on_join` runs before this returns).
    pub fn spawn_at(&mut self, pos: Point) -> NodeId {
        let node = self.world.create_node(pos);
        self.world.activate(node);
        self.feed(node, Input::Join);
        node
    }

    /// Spawns a node at a uniformly random position, joining immediately.
    pub fn spawn_random(&mut self) -> NodeId {
        let arena = self.world.arena();
        let pos = self.world.rng_mut().point_in(&arena);
        self.spawn_at(pos)
    }

    /// Creates a node at `pos` that will join at time `at`.
    pub fn schedule_spawn_at(&mut self, at: SimTime, pos: Point) -> NodeId {
        let node = self.world.create_node(pos);
        self.world.push_at(at, EventKind::Join { node });
        node
    }

    /// Creates a node at a random position that will join at time `at`.
    pub fn schedule_spawn_random(&mut self, at: SimTime) -> NodeId {
        let arena = self.world.arena();
        let pos = self.world.rng_mut().point_in(&arena);
        self.schedule_spawn_at(at, pos)
    }

    /// Schedules `node` to leave at time `at`. Graceful leaves run the
    /// protocol's departure handshake; abrupt leaves kill the node first.
    pub fn schedule_leave(&mut self, at: SimTime, node: NodeId, graceful: bool) {
        self.world.push_at(at, EventKind::Leave { node, graceful });
    }

    /// Makes `node` leave right now.
    pub fn leave_now(&mut self, node: NodeId, graceful: bool) {
        self.dispatch_leave(node, graceful);
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Processes all events with timestamps `≤ until`, then advances the
    /// clock to `until`. Returns the number of events processed.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(ev) = self.world.pop_due(until) {
            self.dispatch(ev.kind);
            processed += 1;
        }
        self.world.advance_to(until);
        processed
    }

    /// Processes the single earliest event with a timestamp `≤ until`
    /// and returns `true`. When no event is due, advances the clock to
    /// `until` and returns `false`.
    ///
    /// This is the hook the conformance oracle uses to interleave an
    /// invariant check after every simulator event:
    ///
    /// ```ignore
    /// while sim.step_until(deadline) {
    ///     checker.check(sim.parts_mut());
    /// }
    /// ```
    pub fn step_until(&mut self, until: SimTime) -> bool {
        match self.world.pop_due(until) {
            Some(ev) => {
                self.dispatch(ev.kind);
                true
            }
            None => {
                self.world.advance_to(until);
                false
            }
        }
    }

    /// Runs for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) -> u64 {
        let until = self.world.now().saturating_add(span);
        self.run_until(until)
    }

    /// Processes events until the queue is empty (only safe for protocols
    /// without self-rescheduling periodic timers) or `max_events` is hit.
    /// Returns the number of events processed.
    pub fn drain(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events {
            match self.world.pop_due(SimTime::MAX) {
                Some(ev) => {
                    self.dispatch(ev.kind);
                    processed += 1;
                }
                None => break,
            }
        }
        processed
    }

    /// Feeds one sans-io [`Input`] to the protocol core: records it in
    /// the transcript (when recording) and dispatches through a [`Net`]
    /// handle wrapping the world.
    fn feed(&mut self, node: NodeId, input: Input<P::Msg>) {
        self.world.record_input(node, &input);
        let mut net = Net::new(&mut self.world);
        self.protocol.handle(&mut net, node, input);
    }

    fn dispatch(&mut self, kind: EventKind<P::Msg>) {
        match kind {
            EventKind::Deliver { to, from, msg } => {
                if self.world.is_alive(to) {
                    self.world.metrics_mut().perf_mut().deliveries += 1;
                    self.feed(to, Input::Message { from, msg });
                }
            }
            EventKind::Timer { node, id, tag } => {
                if !self.world.timer_cancelled(id) && self.world.is_alive(node) {
                    self.world.metrics_mut().perf_mut().timers_fired += 1;
                    self.feed(node, Input::TimerFired { tag });
                }
            }
            EventKind::Join { node } => {
                if self.world.activate(node) {
                    self.feed(node, Input::Join);
                }
            }
            EventKind::Leave { node, graceful } => {
                self.dispatch_leave(node, graceful);
            }
            EventKind::Waypoint { node, epoch } => {
                self.world.handle_waypoint(node, epoch);
            }
            EventKind::Crash { node } => {
                if self.world.is_alive(node) {
                    self.world.record_crash(node);
                    self.dispatch_leave(node, false);
                }
            }
            EventKind::Restart { node } => {
                if self.world.revive(node) {
                    self.feed(node, Input::Join);
                }
            }
            EventKind::HeadKill { count } => self.dispatch_head_kill(count),
        }
    }

    /// Kills up to `count` currently-serving cluster heads, chosen by
    /// the fault RNG among the heads the protocol reports as alive.
    /// The victims die abruptly, exactly like scheduled crashes.
    fn dispatch_head_kill(&mut self, count: u32) {
        let mut heads: Vec<NodeId> = self
            .world
            .alive_nodes()
            .into_iter()
            .filter(|&n| self.protocol.is_cluster_head(n))
            .collect();
        if let Some(rng) = self.world.fault_rng() {
            rng.shuffle(&mut heads);
        }
        heads.truncate(count as usize);
        for node in heads {
            if self.world.is_alive(node) {
                self.world.record_crash(node);
                self.dispatch_leave(node, false);
            }
        }
    }

    fn dispatch_leave(&mut self, node: NodeId, graceful: bool) {
        if !self.world.is_alive(node) {
            return;
        }
        if graceful {
            // The protocol runs its handshake and is responsible for the
            // eventual `remove_node`.
            self.feed(node, Input::Leave { graceful: true });
        } else {
            self.world.remove_node(node);
            self.feed(node, Input::Leave { graceful: false });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MsgCategory, SendError};

    /// Echo protocol: node 0 is the server; every other joiner sends it a
    /// "req" and the server replies "rep".
    #[derive(Default)]
    struct Echo {
        requests: u32,
        replies: u32,
        left: Vec<(NodeId, bool)>,
    }

    impl Protocol for Echo {
        type Msg = &'static str;

        fn on_join(&mut self, w: &mut Net<'_, Self::Msg>, node: NodeId) {
            if node.index() != 0 {
                let _ = w.unicast(node, NodeId::new(0), MsgCategory::Configuration, "req");
            }
        }

        fn on_message(
            &mut self,
            w: &mut Net<'_, Self::Msg>,
            to: NodeId,
            from: NodeId,
            msg: Self::Msg,
        ) {
            match msg {
                "req" => {
                    self.requests += 1;
                    let _ = w.unicast(to, from, MsgCategory::Configuration, "rep");
                }
                "rep" => {
                    self.replies += 1;
                    w.mark_configured(to);
                }
                _ => unreachable!(),
            }
        }

        fn on_leave(&mut self, w: &mut Net<'_, Self::Msg>, node: NodeId, graceful: bool) {
            self.left.push((node, graceful));
            if graceful {
                w.remove_node(node);
            }
        }
    }

    fn still_config() -> WorldConfig {
        WorldConfig {
            speed: 0.0,
            ..WorldConfig::default()
        }
    }

    #[test]
    fn request_reply_roundtrip() {
        let mut sim = Sim::new(still_config(), Echo::default());
        sim.spawn_at(Point::new(0.0, 0.0));
        sim.spawn_at(Point::new(100.0, 0.0));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.protocol().requests, 1);
        assert_eq!(sim.protocol().replies, 1);
        // One hop each way.
        assert_eq!(sim.world().metrics().hops(MsgCategory::Configuration), 2);
        assert!(sim.world().is_configured(NodeId::new(1)));
    }

    #[test]
    fn multi_hop_charges_path_length() {
        let mut sim = Sim::new(still_config(), Echo::default());
        sim.spawn_at(Point::new(0.0, 0.0));
        // Relay chain: 140 m spacing, 150 m range.
        let relay = sim.spawn_at(Point::new(140.0, 0.0));
        let far = sim.spawn_at(Point::new(280.0, 0.0));
        sim.run_for(SimDuration::from_secs(1));
        // relay: 1 hop each way; far: 2 hops each way.
        assert_eq!(sim.world().metrics().hops(MsgCategory::Configuration), 6);
        assert_eq!(sim.protocol().replies, 2);
        let _ = (relay, far);
    }

    #[test]
    fn unreachable_send_fails_without_charge() {
        let mut sim = Sim::new(still_config(), Echo::default());
        sim.spawn_at(Point::new(0.0, 0.0));
        sim.spawn_at(Point::new(900.0, 900.0)); // out of range of node 0
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.protocol().requests, 0);
        assert_eq!(sim.world().metrics().total_hops(), 0);
    }

    #[test]
    fn scheduled_join_fires_in_order() {
        let mut sim = Sim::new(still_config(), Echo::default());
        sim.spawn_at(Point::new(0.0, 0.0));
        let late = sim.schedule_spawn_at(SimTime::from_micros(500_000), Point::new(50.0, 0.0));
        assert!(!sim.world().is_alive(late));
        sim.run_until(SimTime::from_micros(400_000));
        assert!(!sim.world().is_alive(late));
        sim.run_until(SimTime::from_micros(600_000));
        assert!(sim.world().is_alive(late));
        assert_eq!(
            sim.world().joined_at(late),
            Some(SimTime::from_micros(500_000))
        );
    }

    #[test]
    fn abrupt_leave_kills_before_callback() {
        let mut sim = Sim::new(still_config(), Echo::default());
        sim.spawn_at(Point::new(0.0, 0.0));
        let b = sim.spawn_at(Point::new(50.0, 0.0));
        sim.run_for(SimDuration::from_secs(1));
        sim.leave_now(b, false);
        assert!(!sim.world().is_alive(b));
        assert_eq!(sim.protocol().left, vec![(b, false)]);
    }

    #[test]
    fn graceful_leave_lets_protocol_remove() {
        let mut sim = Sim::new(still_config(), Echo::default());
        let a = sim.spawn_at(Point::new(0.0, 0.0));
        sim.run_for(SimDuration::from_secs(1));
        sim.schedule_leave(sim.world().now(), a, true);
        sim.run_for(SimDuration::from_secs(1));
        assert!(!sim.world().is_alive(a));
        assert_eq!(sim.protocol().left, vec![(a, true)]);
    }

    #[test]
    fn leave_of_dead_node_is_noop() {
        let mut sim = Sim::new(still_config(), Echo::default());
        let a = sim.spawn_at(Point::new(0.0, 0.0));
        sim.leave_now(a, false);
        sim.leave_now(a, false);
        sim.leave_now(a, true);
        assert_eq!(sim.protocol().left.len(), 1);
    }

    #[test]
    fn messages_to_dead_nodes_are_dropped() {
        struct SendLater;
        impl Protocol for SendLater {
            type Msg = ();
            fn on_join(&mut self, w: &mut Net<'_, ()>, node: NodeId) {
                if node.index() == 1 {
                    // Queued for delivery one hop later.
                    let _ = w.unicast(node, NodeId::new(0), MsgCategory::Hello, ());
                }
            }
            fn on_message(&mut self, _w: &mut Net<'_, ()>, _t: NodeId, _f: NodeId, _m: ()) {
                panic!("must not deliver to a dead node");
            }
        }
        let mut sim = Sim::new(still_config(), SendLater);
        let a = sim.spawn_at(Point::new(0.0, 0.0));
        sim.spawn_at(Point::new(50.0, 0.0));
        sim.leave_now(a, false); // dies before the queued delivery fires
        sim.run_for(SimDuration::from_secs(1));
    }

    #[test]
    fn timer_fires_and_cancel_works() {
        #[derive(Default)]
        struct Timers {
            fired: Vec<u64>,
        }
        impl Protocol for Timers {
            type Msg = ();
            fn on_join(&mut self, w: &mut Net<'_, ()>, node: NodeId) {
                w.set_timer(node, SimDuration::from_millis(10), 1);
                let cancel_me = w.set_timer(node, SimDuration::from_millis(20), 2);
                w.set_timer(node, SimDuration::from_millis(30), 3);
                w.cancel_timer(cancel_me);
            }
            fn on_message(&mut self, _w: &mut Net<'_, ()>, _t: NodeId, _f: NodeId, _m: ()) {}
            fn on_timer(&mut self, _w: &mut Net<'_, ()>, _node: NodeId, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut sim = Sim::new(still_config(), Timers::default());
        sim.spawn_at(Point::new(0.0, 0.0));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.protocol().fired, vec![1, 3]);
    }

    #[test]
    fn timers_die_with_node() {
        #[derive(Default)]
        struct T {
            fired: u32,
        }
        impl Protocol for T {
            type Msg = ();
            fn on_join(&mut self, w: &mut Net<'_, ()>, node: NodeId) {
                w.set_timer(node, SimDuration::from_millis(100), 0);
            }
            fn on_message(&mut self, _w: &mut Net<'_, ()>, _t: NodeId, _f: NodeId, _m: ()) {}
            fn on_timer(&mut self, _w: &mut Net<'_, ()>, _n: NodeId, _tag: u64) {
                self.fired += 1;
            }
        }
        let mut sim = Sim::new(still_config(), T::default());
        let a = sim.spawn_at(Point::new(0.0, 0.0));
        sim.leave_now(a, false);
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.protocol().fired, 0);
    }

    #[test]
    fn step_until_matches_run_until() {
        let run = |stepped: bool| {
            let mut sim = Sim::new(still_config(), Echo::default());
            sim.spawn_at(Point::new(0.0, 0.0));
            for i in 1..6u64 {
                sim.schedule_spawn_at(
                    SimTime::from_micros(i * 100_000),
                    Point::new(i as f64 * 50.0, 0.0),
                );
            }
            let until = SimTime::from_micros(2_000_000);
            if stepped {
                let mut steps = 0u64;
                while sim.step_until(until) {
                    steps += 1;
                }
                assert!(steps > 0);
                // Idempotent once drained: clock stays put, no event fires.
                assert!(!sim.step_until(until));
            } else {
                sim.run_until(until);
            }
            assert_eq!(sim.world().now(), until);
            let m = sim.world().metrics();
            (m.total_messages(), m.total_hops(), sim.protocol().replies)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let mut sim = Sim::new(still_config(), Echo::default());
        sim.run_until(SimTime::from_micros(123));
        assert_eq!(sim.world().now(), SimTime::from_micros(123));
    }

    #[test]
    fn mobility_moves_configured_nodes() {
        let config = WorldConfig {
            speed: 20.0,
            ..WorldConfig::default()
        };
        let mut sim = Sim::new(config, Echo::default());
        sim.spawn_at(Point::new(500.0, 500.0));
        let b = sim.spawn_at(Point::new(520.0, 500.0));
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.world().is_configured(b));
        let before = sim.world().position(b).unwrap();
        sim.run_for(SimDuration::from_secs(30));
        let after = sim.world().position(b).unwrap();
        assert!(
            before.distance(after) > 1.0,
            "configured node should have moved: {before} → {after}"
        );
        // Unconfigured node 0 stays put.
        let p0 = sim.world().position(NodeId::new(0)).unwrap();
        assert_eq!(p0, Point::new(500.0, 500.0));
    }

    #[test]
    fn flood_reaches_component_and_charges_size() {
        struct Flooder;
        impl Protocol for Flooder {
            type Msg = ();
            fn on_join(&mut self, w: &mut Net<'_, ()>, node: NodeId) {
                if node.index() == 3 {
                    let got = w.flood(node, MsgCategory::Sync, ()).unwrap();
                    assert_eq!(got.len(), 3); // other three in the chain
                }
            }
            fn on_message(&mut self, _w: &mut Net<'_, ()>, _t: NodeId, _f: NodeId, _m: ()) {}
        }
        let mut sim = Sim::new(still_config(), Flooder);
        for i in 0..4 {
            sim.spawn_at(Point::new(i as f64 * 100.0, 0.0));
        }
        // Flood charge = component size (4 transmissions).
        assert_eq!(sim.world().metrics().hops(MsgCategory::Sync), 4);
    }

    #[test]
    fn broadcast_within_k() {
        struct B;
        impl Protocol for B {
            type Msg = ();
            fn on_join(&mut self, w: &mut Net<'_, ()>, node: NodeId) {
                if node.index() == 4 {
                    // Chain of 5 nodes, 100 m apart; node 4 broadcasts 2 hops.
                    let got = w.broadcast_within(node, 2, MsgCategory::Hello, ()).unwrap();
                    assert_eq!(got.len(), 2); // nodes 3 and 2
                }
            }
            fn on_message(&mut self, _w: &mut Net<'_, ()>, _t: NodeId, _f: NodeId, _m: ()) {}
        }
        let mut sim = Sim::new(still_config(), B);
        for i in 0..5 {
            sim.spawn_at(Point::new(i as f64 * 100.0, 0.0));
        }
        // Transmissions: originator + 1 relay (node 3).
        assert_eq!(sim.world().metrics().hops(MsgCategory::Hello), 2);
    }

    #[test]
    fn dead_sender_cannot_send() {
        let mut sim = Sim::new(still_config(), Echo::default());
        let a = sim.spawn_at(Point::new(0.0, 0.0));
        let b = sim.spawn_at(Point::new(10.0, 0.0));
        sim.run_for(SimDuration::from_secs(1));
        sim.leave_now(a, false);
        let err = sim
            .world_mut()
            .unicast(a, b, MsgCategory::Hello, "x")
            .unwrap_err();
        assert_eq!(err, SendError::SenderDead);
    }

    #[test]
    fn determinism_same_seed_same_run() {
        fn run(seed: u64) -> (u64, u64) {
            let config = WorldConfig {
                seed,
                ..WorldConfig::default()
            };
            let mut sim = Sim::new(config, Echo::default());
            for _ in 0..20 {
                sim.spawn_random();
            }
            sim.run_for(SimDuration::from_secs(10));
            let m = sim.world().metrics();
            (m.total_messages(), m.total_hops())
        }
        assert_eq!(run(42), run(42));
    }
}
