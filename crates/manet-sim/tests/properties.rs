//! Property-based tests of the simulator substrate: topology invariants,
//! mobility kinematics, and metric accounting.

use manet_sim::mobility::MobilityState;
use manet_sim::topology::Topology;
use manet_sim::{Arena, NodeId, Point, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

fn arb_nodes(max: usize) -> impl Strategy<Value = Vec<(NodeId, Point)>> {
    prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 1..max).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y))| (NodeId::new(i as u64), Point::new(x, y)))
            .collect()
    })
}

proptest! {
    /// Adjacency is symmetric: if a lists b, b lists a.
    #[test]
    fn neighbors_symmetric(nodes in arb_nodes(40), range in 50.0f64..400.0) {
        let topo = Topology::build(&nodes, range);
        for (a, _) in &nodes {
            for b in topo.neighbors(*a) {
                prop_assert!(topo.neighbors(b).contains(a), "{a} -> {b} not symmetric");
            }
        }
    }

    /// Hop distance is symmetric and satisfies the triangle inequality
    /// through any intermediate node.
    #[test]
    fn hops_metric_properties(nodes in arb_nodes(25), range in 100.0f64..400.0) {
        let topo = Topology::build(&nodes, range);
        let ids: Vec<NodeId> = nodes.iter().map(|(n, _)| *n).collect();
        for &a in &ids {
            for &b in &ids {
                prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
            }
        }
        // Triangle inequality on a sample of triples.
        for chunk in ids.chunks(3) {
            if let [a, b, c] = chunk {
                if let (Some(ab), Some(bc)) = (topo.hops(*a, *b), topo.hops(*b, *c)) {
                    let ac = topo.hops(*a, *c).expect("connected through b");
                    prop_assert!(ac <= ab + bc, "d({a},{c})={ac} > {ab}+{bc}");
                }
            }
        }
    }

    /// Components partition the node set: every node in exactly one.
    #[test]
    fn components_partition(nodes in arb_nodes(40), range in 50.0f64..400.0) {
        let topo = Topology::build(&nodes, range);
        let comps = topo.components();
        let mut seen = std::collections::BTreeSet::new();
        for comp in &comps {
            for n in comp {
                prop_assert!(seen.insert(*n), "{n} in two components");
            }
        }
        prop_assert_eq!(seen.len(), nodes.len());
        // Nodes in the same component are mutually reachable.
        for comp in &comps {
            if comp.len() >= 2 {
                prop_assert!(topo.connected(comp[0], comp[1]));
            }
        }
    }

    /// A node within k hops is also within k+1 hops (monotone balls).
    #[test]
    fn k_hop_balls_are_monotone(nodes in arb_nodes(30), range in 50.0f64..300.0, k in 1u32..5) {
        let topo = Topology::build(&nodes, range);
        let center = nodes[0].0;
        let near: Vec<NodeId> = topo.within(center, k).into_iter().map(|(n, _)| n).collect();
        let wider: Vec<NodeId> = topo.within(center, k + 1).into_iter().map(|(n, _)| n).collect();
        for n in near {
            prop_assert!(wider.contains(&n));
        }
    }

    /// Mobility never moves a node faster than its speed.
    #[test]
    fn mobility_respects_speed(
        seed in 0u64..500,
        speed in 1.0f64..50.0,
        dt_ms in 1u64..20_000,
    ) {
        let arena = Arena::default();
        let mut rng = SimRng::seed_from(seed);
        let start = rng.point_in(&arena);
        let mut m = MobilityState::parked(start);
        m.retarget(SimTime::ZERO, &arena, speed, &mut rng);
        let t = SimTime::ZERO + SimDuration::from_millis(dt_ms);
        let moved = start.distance(m.position(t));
        // Travel time is quantized to whole microseconds, so the
        // effective speed can exceed the nominal one by up to
        // speed * 1 µs of distance; allow that plus float slack.
        let budget = (speed * (dt_ms as f64 / 1000.0)) * (1.0 + 1e-9) + speed * 1e-6 + 1e-3;
        prop_assert!(moved <= budget, "moved {moved} > budget {budget}");
    }

    /// Positions are continuous: nearby times give nearby positions.
    #[test]
    fn mobility_is_continuous(seed in 0u64..500, speed in 1.0f64..50.0, t_ms in 0u64..30_000) {
        let arena = Arena::default();
        let mut rng = SimRng::seed_from(seed);
        let mut m = MobilityState::parked(rng.point_in(&arena));
        m.retarget(SimTime::ZERO, &arena, speed, &mut rng);
        let t1 = SimTime::ZERO + SimDuration::from_millis(t_ms);
        let t2 = t1 + SimDuration::from_millis(10);
        let jump = m.position(t1).distance(m.position(t2));
        prop_assert!(jump <= speed * 0.010 * (1.0 + 1e-9) + speed * 1e-6 + 1e-3, "jump {jump}");
    }
}
