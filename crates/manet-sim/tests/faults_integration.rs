//! End-to-end tests of the fault-injection plane through the public API.

use manet_sim::faults::FaultPlan;
use manet_sim::{
    MsgCategory, Net, NodeId, Point, Protocol, Sim, SimDuration, SimTime, WorldConfig,
};

/// Ping protocol: every joiner unicasts node 0 once; node 0 counts.
#[derive(Default)]
struct Ping {
    received: u32,
    joins: u32,
}

impl Protocol for Ping {
    type Msg = &'static str;

    fn on_join(&mut self, w: &mut Net<'_, Self::Msg>, node: NodeId) {
        self.joins += 1;
        if node.index() != 0 {
            let _ = w.unicast(node, NodeId::new(0), MsgCategory::Configuration, "ping");
        }
    }

    fn on_message(
        &mut self,
        _w: &mut Net<'_, Self::Msg>,
        _to: NodeId,
        _from: NodeId,
        _m: &'static str,
    ) {
        self.received += 1;
    }
}

/// Protocol in which node 0 is permanently the head.
#[derive(Default)]
struct HeadZero;

impl Protocol for HeadZero {
    type Msg = ();
    fn on_join(&mut self, _w: &mut Net<'_, ()>, _node: NodeId) {}
    fn on_message(&mut self, _w: &mut Net<'_, ()>, _t: NodeId, _f: NodeId, _m: ()) {}
    fn is_cluster_head(&self, node: NodeId) -> bool {
        node.index() == 0
    }
}

fn still(plan: FaultPlan) -> WorldConfig {
    WorldConfig {
        speed: 0.0,
        fault_plan: plan,
        ..WorldConfig::default()
    }
}

fn chain(sim: &mut Sim<Ping>, n: usize) {
    for i in 0..n {
        sim.spawn_at(Point::new(i as f64 * 100.0, 0.0));
    }
}

#[test]
fn empty_plan_with_any_seed_is_identical_to_no_plan() {
    fn run(plan: FaultPlan) -> (u64, u64, u64) {
        let mut sim = Sim::new(still(plan), Ping::default());
        chain(&mut sim, 10);
        sim.run_for(SimDuration::from_secs(5));
        let m = sim.world().metrics();
        (m.total_messages(), m.total_hops(), m.faults().total())
    }
    let baseline = run(FaultPlan::default());
    assert_eq!(baseline, run(FaultPlan::new(12345)));
    assert_eq!(baseline.2, 0, "no faults injected");
}

#[test]
fn total_loss_drops_every_delivery_but_charges_hops() {
    let plan = FaultPlan::new(1).with_loss(1.0);
    let mut sim = Sim::new(still(plan), Ping::default());
    chain(&mut sim, 5);
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(sim.protocol().received, 0, "every ping dropped");
    let m = sim.world().metrics();
    assert_eq!(m.faults().dropped, 4);
    assert!(m.total_hops() > 0, "transmissions still charged");
}

#[test]
fn duplication_delivers_extra_copies() {
    let plan = FaultPlan::new(2).with_duplication(1.0);
    let mut sim = Sim::new(still(plan), Ping::default());
    chain(&mut sim, 5);
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(sim.protocol().received, 8, "each of 4 pings arrives twice");
    assert_eq!(sim.world().metrics().faults().duplicated, 4);
}

#[test]
fn injected_delay_postpones_delivery() {
    let plan =
        FaultPlan::new(3).with_delay(1.0, SimDuration::from_secs(10), SimDuration::from_secs(10));
    let mut sim = Sim::new(still(plan), Ping::default());
    chain(&mut sim, 2);
    sim.run_for(SimDuration::from_secs(5));
    assert_eq!(sim.protocol().received, 0, "still in flight");
    sim.run_for(SimDuration::from_secs(10));
    assert_eq!(
        sim.protocol().received,
        1,
        "arrived after the injected delay"
    );
    assert_eq!(sim.world().metrics().faults().delayed, 1);
}

#[test]
fn scheduled_crash_kills_and_restart_revives() {
    let node = NodeId::new(2);
    let plan = FaultPlan::new(4).with_crash(
        node,
        SimTime::from_micros(1_000_000),
        Some(SimTime::from_micros(3_000_000)),
    );
    let mut sim = Sim::new(still(plan), Ping::default());
    chain(&mut sim, 4);
    assert!(sim.world().is_alive(node));
    sim.run_until(SimTime::from_micros(2_000_000));
    assert!(!sim.world().is_alive(node), "crashed on schedule");
    assert_eq!(sim.world().metrics().faults().crashes, 1);
    sim.run_until(SimTime::from_micros(4_000_000));
    assert!(sim.world().is_alive(node), "restarted on schedule");
    assert!(
        !sim.world().is_configured(node),
        "restart forgets configuration"
    );
    assert_eq!(sim.world().metrics().faults().restarts, 1);
    // The restart re-runs the join handshake (4 spawns + 1 rejoin).
    assert_eq!(sim.protocol().joins, 5);
}

#[test]
fn restart_without_crash_is_ignored() {
    // The node never dies, so the scheduled restart must be a no-op.
    let plan = FaultPlan {
        crashes: vec![manet_sim::faults::CrashEvent {
            node: NodeId::new(1),
            at: SimTime::from_micros(10_000_000_000), // far beyond the run
            restart_at: Some(SimTime::from_micros(1_000_000)),
        }],
        ..FaultPlan::default()
    };
    let mut sim = Sim::new(still(plan), Ping::default());
    chain(&mut sim, 3);
    sim.run_for(SimDuration::from_secs(5));
    assert_eq!(sim.world().metrics().faults().restarts, 0);
    assert_eq!(sim.protocol().joins, 3);
}

#[test]
fn head_kill_takes_out_the_reported_head() {
    let plan = FaultPlan::new(5).with_head_kill(SimTime::from_micros(1_000_000), 1);
    let mut sim = Sim::new(still(plan), HeadZero);
    for i in 0..4 {
        sim.spawn_at(Point::new(i as f64 * 100.0, 0.0));
    }
    sim.run_for(SimDuration::from_secs(2));
    assert!(!sim.world().is_alive(NodeId::new(0)), "the head died");
    assert_eq!(sim.world().alive_count(), 3, "only the head died");
    assert_eq!(sim.world().metrics().faults().crashes, 1);
}

#[test]
fn head_kill_with_no_heads_is_a_noop() {
    let plan = FaultPlan::new(6).with_head_kill(SimTime::from_micros(500_000), 3);
    let mut sim = Sim::new(still(plan), Ping::default()); // default: no heads
    chain(&mut sim, 4);
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(sim.world().alive_count(), 4);
    assert_eq!(sim.world().metrics().faults().crashes, 0);
}

#[test]
fn jam_region_blocks_covered_traffic_then_clears() {
    // Jam around node 0 for the first second.
    let plan = FaultPlan::new(7).with_jam(
        Point::new(0.0, 0.0),
        Point::new(50.0, 50.0),
        SimTime::ZERO,
        SimTime::from_micros(1_000_000),
    );
    let mut sim = Sim::new(still(plan), Ping::default());
    chain(&mut sim, 3); // spawns at t=0, inside the jam window
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(sim.protocol().received, 0, "receiver was jammed");
    assert_eq!(sim.world().metrics().faults().dropped, 2);
    // After the jam lifts, new traffic flows.
    sim.spawn_at(Point::new(300.0, 0.0));
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(sim.protocol().received, 1);
}

#[test]
fn partition_blocks_cross_boundary_traffic() {
    let plan =
        FaultPlan::new(8).with_partition(150.0, SimTime::ZERO, SimTime::from_micros(10_000_000));
    let mut sim = Sim::new(still(plan), Ping::default());
    chain(&mut sim, 4); // nodes at x = 0, 100, 200, 300
    sim.run_for(SimDuration::from_secs(2));
    // Node 1 (x=100) is on node 0's side; nodes 2 and 3 are cut off.
    assert_eq!(sim.protocol().received, 1);
    assert_eq!(sim.world().metrics().faults().dropped, 2);
}

#[test]
fn same_seed_and_plan_reproduce_identical_metrics() {
    fn run() -> manet_sim::Metrics {
        let plan = FaultPlan::new(99)
            .with_loss(0.3)
            .with_delay(
                0.2,
                SimDuration::from_millis(1),
                SimDuration::from_millis(20),
            )
            .with_duplication(0.1)
            .with_crash(NodeId::new(3), SimTime::from_micros(2_000_000), None);
        let config = WorldConfig {
            seed: 17,
            fault_plan: plan,
            ..WorldConfig::default()
        };
        let mut sim = Sim::new(config, Ping::default());
        for _ in 0..20 {
            sim.spawn_random();
        }
        sim.run_for(SimDuration::from_secs(10));
        sim.world().metrics().clone()
    }
    assert_eq!(run(), run());
}

#[test]
fn fault_events_appear_in_trace() {
    let plan = FaultPlan::new(10).with_loss(1.0).with_crash(
        NodeId::new(1),
        SimTime::from_micros(500_000),
        None,
    );
    let mut sim = Sim::new(still(plan), Ping::default());
    sim.world_mut().enable_trace(256);
    chain(&mut sim, 3);
    sim.run_for(SimDuration::from_secs(2));
    let rendered = sim.world().trace().render();
    assert!(rendered.contains("fault drop"), "trace: {rendered}");
    assert!(rendered.contains("crashed"), "trace: {rendered}");
    let jsonl = sim.world().trace().to_jsonl();
    assert!(jsonl.contains("\"event\":\"fault_drop\""));
    assert!(jsonl.contains("\"event\":\"crash\""));
}
