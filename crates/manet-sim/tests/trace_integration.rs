//! End-to-end check that the event trace captures simulator activity.

use manet_sim::trace::TraceEvent;
use manet_sim::{MsgCategory, Net, NodeId, Point, Protocol, Sim, SimDuration, WorldConfig};

struct PingAll;

impl Protocol for PingAll {
    type Msg = u8;
    fn on_join(&mut self, w: &mut Net<'_, u8>, node: NodeId) {
        if node.index() > 0 {
            let _ = w.unicast(node, NodeId::new(0), MsgCategory::Configuration, 1);
        }
    }
    fn on_message(&mut self, w: &mut Net<'_, u8>, to: NodeId, from: NodeId, msg: u8) {
        if msg == 1 {
            let _ = w.broadcast_within(to, 1, MsgCategory::Hello, 2);
            let _ = w.unicast(to, from, MsgCategory::Configuration, 3);
        }
    }
}

#[test]
fn trace_captures_joins_sends_and_removals() {
    let mut sim = Sim::new(
        WorldConfig {
            speed: 0.0,
            ..WorldConfig::default()
        },
        PingAll,
    );
    sim.world_mut().enable_trace(128);
    let a = sim.spawn_at(Point::new(0.0, 0.0));
    let b = sim.spawn_at(Point::new(50.0, 0.0));
    sim.run_for(SimDuration::from_secs(1));
    sim.leave_now(b, false);

    let trace = sim.world().trace();
    assert!(trace.is_enabled());
    let events: Vec<_> = trace.records().map(|r| &r.event).collect();

    let joins = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Join { .. }))
        .count();
    assert_eq!(joins, 2);

    assert!(events.iter().any(|e| matches!(
        e,
        TraceEvent::Unicast {
            from,
            to,
            hops: 1,
            ..
        } if *from == b && *to == a
    )));
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Broadcast { k: Some(1), .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Remove { node } if *node == b)));

    let rendered = trace.render();
    assert!(rendered.contains("joined"));
    assert!(rendered.contains("removed"));
}

#[test]
fn trace_disabled_by_default_costs_nothing() {
    let mut sim = Sim::new(WorldConfig::default(), PingAll);
    sim.spawn_at(Point::new(0.0, 0.0));
    sim.spawn_at(Point::new(50.0, 0.0));
    sim.run_for(SimDuration::from_secs(1));
    assert!(sim.world().trace().is_empty());
    assert!(!sim.world().trace().is_enabled());
}
