//! Mobility-model conformance: every model keeps nodes inside the arena
//! over long horizons, and same-seed runs are bit-identical (pinned
//! trace fingerprints per model).

use manet_sim::mobility::{MobilityConfig, RetargetCtx};
use manet_sim::{Arena, Net, NodeId, Point, Sim, SimDuration, SimRng, SimTime, WorldConfig};

/// Marks every joiner configured immediately so mobility starts.
struct Idle;

impl manet_sim::Protocol for Idle {
    type Msg = ();

    fn on_join(&mut self, w: &mut Net<'_, ()>, node: NodeId) {
        w.mark_configured(node);
    }

    fn on_message(&mut self, _w: &mut Net<'_, ()>, _to: NodeId, _from: NodeId, _msg: ()) {}
}

const MODELS: [&str; 4] = [
    "random-waypoint",
    "manhattan:100",
    "group:4,50",
    "flash-crowd:80,30",
];

/// Drives each model's `next_leg` directly for 10k legs and checks the
/// produced destination never leaves the arena — the differential
/// in-bounds property the simulator's clamp then only has to defend,
/// not create.
#[test]
fn every_model_stays_in_bounds_over_10k_steps() {
    let arena = Arena::new(700.0, 500.0);
    for spec in MODELS {
        let cfg = MobilityConfig::parse(spec).unwrap();
        let mut model = cfg.build(99);
        let mut rng = SimRng::seed_from(7);
        let mut here = Point::new(350.0, 250.0);
        for step in 0..10_000u64 {
            let ctx = RetargetCtx {
                node: NodeId::new(step % 16),
                now: SimTime::from_micros(step * 250_000),
                here,
                arena: &arena,
                speed: 20.0,
            };
            let (dest, speed) = model.next_leg(&ctx, &mut rng);
            assert!(
                arena.contains(dest),
                "{spec}: leg {step} left the arena: {dest}"
            );
            assert!(speed >= 0.0, "{spec}: negative speed at leg {step}");
            here = dest;
        }
    }
}

/// World-level in-bounds check: a moving population under each model,
/// sampled every quantum for a simulated minute, never reports an
/// out-of-arena position.
#[test]
fn world_positions_stay_in_bounds_under_every_model() {
    for spec in MODELS {
        let wc = WorldConfig {
            arena: Arena::new(600.0, 600.0),
            mobility: MobilityConfig::parse(spec).unwrap(),
            seed: 11,
            ..WorldConfig::default()
        };
        let arena = wc.arena;
        let mut sim = Sim::new(wc, Idle);
        for i in 0..12 {
            sim.spawn_at(Point::new(50.0 + 45.0 * i as f64, 300.0));
        }
        let end = SimTime::ZERO + SimDuration::from_secs(60);
        while sim.step_until(end) {
            let (w, _) = sim.parts_mut();
            for i in 0..12 {
                let p = w.position(NodeId::new(i)).unwrap();
                assert!(arena.contains(p), "{spec}: node {i} at {p} left {arena}");
            }
        }
    }
}

/// FNV-1a over the bit patterns of every sampled position — the
/// fingerprint two identical runs must share.
fn run_fingerprint(spec: &str, seed: u64) -> u64 {
    let wc = WorldConfig {
        mobility: MobilityConfig::parse(spec).unwrap(),
        seed,
        ..WorldConfig::default()
    };
    let mut sim = Sim::new(wc, Idle);
    for i in 0..10 {
        sim.spawn_at(Point::new(100.0 + 80.0 * i as f64, 500.0));
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let end = SimTime::ZERO + SimDuration::from_secs(30);
    while sim.step_until(end) {
        let (w, _) = sim.parts_mut();
        for i in 0..10 {
            let p = w.position(NodeId::new(i)).unwrap();
            mix(p.x.to_bits());
            mix(p.y.to_bits());
        }
    }
    hash
}

/// Same seed ⇒ byte-identical movement, different seed ⇒ divergence,
/// and the per-model fingerprints are pinned: any change to a model's
/// draw sequence (or to the default model's legacy stream) fails here.
#[test]
fn same_seed_trace_fingerprints_are_pinned() {
    let pinned: [(&str, u64); 4] = [
        ("random-waypoint", 0x4040_473a_36c7_d30f),
        ("manhattan:100", 0xc1f4_0713_7b6b_49e5),
        ("group:4,50", 0xb06c_1668_4a99_f4a8),
        ("flash-crowd:80,30", 0xac42_84c9_41a4_c601),
    ];
    let mut moved = Vec::new();
    for (spec, want) in pinned {
        let a = run_fingerprint(spec, 4242);
        let b = run_fingerprint(spec, 4242);
        assert_eq!(a, b, "{spec}: same-seed runs diverged");
        if a != want {
            moved.push(format!("(\"{spec}\", {a:#018x})"));
        }
        let other = run_fingerprint(spec, 4243);
        assert_ne!(a, other, "{spec}: different seeds produced identical runs");
    }
    assert!(
        moved.is_empty(),
        "pinned fingerprints moved — a mobility model's draw sequence \
         changed; observed: {}",
        moved.join(", ")
    );
}
