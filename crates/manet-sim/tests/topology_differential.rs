//! Differential tests: the spatial-grid topology engine against the
//! naive O(n²) oracle, and the memoized BFS queries against fresh
//! traversals.
//!
//! This is how NS-style simulators validate optimized connectivity
//! structures: the optimized engine must be *indistinguishable* from
//! the obviously-correct one — same link sets (inclusive range
//! boundary), same adjacency order, same hop metrics — across layouts
//! from sparse (range well under one grid cell of spacing) to dense
//! (range covering the whole arena in a few cells).

use manet_sim::mobility::MobilityState;
use manet_sim::topology::Topology;
use manet_sim::{
    Arena, IncrementalTopology, Net, NodeId, Point, Protocol, Sim, SimDuration, SimRng, World,
    WorldConfig,
};
use proptest::prelude::*;

fn random_layout(seed: u64, n: usize, area: f64) -> Vec<(NodeId, Point)> {
    let arena = Arena::new(area, area);
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|i| (NodeId::new(i as u64), rng.point_in(&arena)))
        .collect()
}

/// Full structural equality between two builds of the same layout:
/// identical neighbor lists (content *and* order), link counts, and
/// membership.
fn assert_same_graph(grid: &Topology, naive: &Topology, nodes: &[(NodeId, Point)]) {
    assert_eq!(grid.len(), naive.len());
    assert_eq!(grid.link_count(), naive.link_count());
    for (id, _) in nodes {
        assert_eq!(
            grid.neighbors(*id),
            naive.neighbors(*id),
            "adjacency of {id:?} diverges"
        );
        assert_eq!(grid.neighbor_indices(*id), naive.neighbor_indices(*id));
    }
}

proptest! {
    /// Grid-built adjacency equals the naive all-pairs adjacency on
    /// random layouts across the whole sparse-to-dense spectrum.
    #[test]
    fn grid_adjacency_equals_naive_oracle(
        n in 0usize..120,
        range in 5.0f64..1500.0,
        seed in 0u64..1_000_000,
    ) {
        let nodes = random_layout(seed, n, 1000.0);
        let grid = Topology::build(&nodes, range);
        let naive = Topology::build_naive(&nodes, range);
        assert_same_graph(&grid, &naive, &nodes);
    }

    /// Memoized `distances_from` / `hops` / `within` / `components`
    /// agree with a fresh BFS on the naive oracle build, and repeating
    /// each query returns the same answer (the memo is read-only).
    #[test]
    fn memoized_queries_equal_fresh_bfs(
        n in 1usize..80,
        range in 50.0f64..800.0,
        seed in 0u64..1_000_000,
    ) {
        let nodes = random_layout(seed, n, 1000.0);
        let grid = Topology::build(&nodes, range);
        let sources: Vec<NodeId> = nodes.iter().map(|(id, _)| *id).take(8).collect();
        for &s in &sources {
            // Fresh oracle per query: a new naive build has an empty memo.
            let oracle = Topology::build_naive(&nodes, range);
            prop_assert_eq!(grid.distances_from(s), oracle.distances_from(s));
            prop_assert_eq!(grid.within(s, 2), oracle.within(s, 2));
            prop_assert_eq!(grid.component_of(s), oracle.component_of(s));
            for &t in &sources {
                prop_assert_eq!(grid.hops(s, t), oracle.hops(s, t));
            }
            // Second round hits the memo; answers must not move.
            prop_assert_eq!(grid.distances_from(s), oracle.distances_from(s));
            prop_assert_eq!(grid.component_of(s), oracle.component_of(s));
        }
        prop_assert_eq!(grid.components(), Topology::build_naive(&nodes, range).components());
        prop_assert_eq!(grid.components(), grid.components());
    }
}

// ---------------------------------------------------------------------
// Incremental and parallel engines vs. the fresh build
// ---------------------------------------------------------------------

/// One random mutation of an (ascending-by-id) layout: a local drift,
/// a teleport, a crash (removal), or a join. Returns a label for
/// failure messages.
fn mutate_layout(
    nodes: &mut Vec<(NodeId, Point)>,
    next_id: &mut u64,
    rng: &mut SimRng,
    arena: &Arena,
) -> &'static str {
    let roll = rng.point_in(arena).x;
    if nodes.is_empty() || roll < arena.width() * 0.4 {
        // Join: fresh id strictly above every existing one.
        let p = rng.point_in(arena);
        nodes.push((NodeId::new(*next_id), p));
        *next_id += 1;
        "join"
    } else if roll < arena.width() * 0.55 {
        // Crash: drop one node, ascending order preserved.
        let idx = (rng.point_in(arena).y / arena.height() * nodes.len() as f64) as usize;
        nodes.remove(idx.min(nodes.len() - 1));
        "crash"
    } else if roll < arena.width() * 0.8 {
        // Local drift: a handful of nodes wander a few meters.
        for (i, (_, p)) in nodes.iter_mut().enumerate() {
            if i % 7 == 0 {
                let d = rng.point_in(arena);
                p.x = (p.x + d.x * 0.02 - arena.width() * 0.01).clamp(0.0, arena.width());
                p.y = (p.y + d.y * 0.02 - arena.height() * 0.01).clamp(0.0, arena.height());
            }
        }
        "drift"
    } else {
        // Teleport: one node jumps arena-wide.
        let idx = (rng.point_in(arena).y / arena.height() * nodes.len() as f64) as usize;
        let idx = idx.min(nodes.len() - 1);
        nodes[idx].1 = rng.point_in(arena);
        "teleport"
    }
}

proptest! {
    /// The dirty-strip incremental maintainer is indistinguishable from
    /// a fresh build across arbitrary interleavings of moves, joins,
    /// and crashes — the tentpole's correctness obligation.
    #[test]
    fn incremental_equals_fresh_across_mutations(
        n in 0usize..120,
        range in 20.0f64..400.0,
        seed in 0u64..1_000_000,
    ) {
        let arena = Arena::new(1000.0, 1000.0);
        let mut rng = SimRng::seed_from(seed);
        let mut nodes = random_layout(seed, n, 1000.0);
        let mut next_id = n as u64;
        let mut inc = IncrementalTopology::new();
        for round in 0..8 {
            let op = mutate_layout(&mut nodes, &mut next_id, &mut rng, &arena);
            let maintained = inc.update(&nodes, range);
            let fresh = Topology::build(&nodes, range);
            prop_assert!(
                maintained == fresh,
                "round {round} ({op}, n={}): incremental diverged from fresh",
                nodes.len()
            );
        }
    }

    /// The parallel builder equals the serial one for every thread
    /// count, including over-subscription past the row count.
    #[test]
    fn parallel_build_equals_serial(
        n in 0usize..150,
        range in 20.0f64..600.0,
        seed in 0u64..1_000_000,
        threads in 1usize..9,
    ) {
        let nodes = random_layout(seed, n, 1000.0);
        let serial = Topology::build(&nodes, range);
        let parallel = Topology::build_parallel(&nodes, range, threads);
        prop_assert!(parallel == serial, "threads={threads} diverged");
        assert_same_graph(&parallel, &Topology::build_naive(&nodes, range), &nodes);
    }
}

/// Degenerate layouts the proptest distributions rarely produce: every
/// node coincident, a collinear line along a row boundary, the sub-32
/// naive fallback, duplicate positions, and an empty world — for all
/// three engines at once.
#[test]
fn engines_agree_on_degenerate_layouts() {
    let layouts: Vec<(&str, Vec<(NodeId, Point)>)> = vec![
        ("empty", Vec::new()),
        ("single", vec![(NodeId::new(0), Point::new(3.0, 4.0))]),
        (
            "coincident",
            (0..64u32)
                .map(|i| (NodeId::new(u64::from(i)), Point::new(500.0, 500.0)))
                .collect(),
        ),
        (
            "collinear-on-row-boundary",
            (0..48u32)
                .map(|i| {
                    (
                        NodeId::new(u64::from(i)),
                        Point::new(f64::from(i) * 20.0, 150.0),
                    )
                })
                .collect(),
        ),
        (
            "sub-32-fallback",
            (0..20u32)
                .map(|i| {
                    (
                        NodeId::new(u64::from(i)),
                        Point::new(f64::from(i) * 77.0, f64::from(i) * 13.0),
                    )
                })
                .collect(),
        ),
        (
            "duplicate-positions",
            (0..40u32)
                .map(|i| {
                    (
                        NodeId::new(u64::from(i)),
                        Point::new(f64::from(i % 5) * 100.0, 200.0),
                    )
                })
                .collect(),
        ),
    ];
    for (label, nodes) in &layouts {
        for &range in &[0.5, 150.0, 2000.0] {
            let fresh = Topology::build(nodes, range);
            let naive = Topology::build_naive(nodes, range);
            assert_same_graph(&fresh, &naive, nodes);
            let mut inc = IncrementalTopology::new();
            // Twice: once cold, once warm (the warm path re-sweeps).
            assert!(inc.update(nodes, range) == fresh, "{label} r={range} cold");
            assert!(inc.update(nodes, range) == fresh, "{label} r={range} warm");
            for threads in [1, 4] {
                assert!(
                    Topology::build_parallel(nodes, range, threads) == fresh,
                    "{label} r={range} threads={threads}"
                );
            }
        }
    }
}

/// Deterministic sweep pinning the boundary regimes the proptest may
/// not hit every run: n up to 500 (the issue's ceiling), ranges from
/// far-below-cell-spacing to beyond the arena diagonal (complete
/// graph), plus n ∈ {0, 1}.
#[test]
fn grid_equals_naive_across_size_and_range_sweep() {
    for &n in &[0usize, 1, 2, 3, 10, 60, 200, 500] {
        for &range in &[5.0f64, 40.0, 150.0, 450.0, 1500.0] {
            let nodes = random_layout(n as u64 * 31 + 7, n, 1000.0);
            let grid = Topology::build(&nodes, range);
            let naive = Topology::build_naive(&nodes, range);
            assert_same_graph(&grid, &naive, &nodes);
            // Spot-check the BFS layer too, from a few sources.
            for (id, _) in nodes.iter().take(5) {
                assert_eq!(grid.distances_from(*id), naive.distances_from(*id));
                assert_eq!(grid.component_of(*id), naive.component_of(*id));
            }
            assert_eq!(grid.components(), naive.components());
        }
    }
}

/// The inclusive range boundary survives the grid engine: nodes at
/// exactly `range` apart link, a hair beyond do not — including pairs
/// that straddle a cell border.
#[test]
fn inclusive_boundary_across_cell_borders() {
    let range = 150.0;
    let cases = [
        (Point::new(0.0, 0.0), Point::new(150.0, 0.0), true),
        (Point::new(0.0, 0.0), Point::new(150.0 + 1e-9, 0.0), false),
        // Straddles the x = 150 cell border diagonally.
        (Point::new(149.0, 10.0), Point::new(239.0, 130.0), true), // dist = 150
        (Point::new(90.0, 120.0), Point::new(180.0, 0.0), true),   // dist = 150
        (Point::new(100.0, 100.0), Point::new(400.0, 100.0), false),
    ];
    for (i, &(a, b, linked)) in cases.iter().enumerate() {
        let nodes = [(NodeId::new(0), a), (NodeId::new(1), b)];
        for t in [
            Topology::build(&nodes, range),
            Topology::build_naive(&nodes, range),
        ] {
            assert_eq!(
                t.hops(NodeId::new(0), NodeId::new(1)) == Some(1),
                linked,
                "case {i}: {a} - {b}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// World-level cache invalidation
// ---------------------------------------------------------------------

/// A protocol that does nothing — these tests drive the world directly.
struct Inert;
impl Protocol for Inert {
    type Msg = ();
    fn on_join(&mut self, _w: &mut Net<'_, ()>, _node: NodeId) {}
    fn on_message(&mut self, _w: &mut Net<'_, ()>, _to: NodeId, _from: NodeId, _m: ()) {}
}

/// The oracle for "what should the world's topology be right now":
/// a naive build over the instantaneous alive positions.
fn oracle_of<M: Clone + std::fmt::Debug>(w: &mut World<M>) -> Topology {
    let positions: Vec<(NodeId, Point)> = w
        .alive_nodes()
        .into_iter()
        .map(|n| (n, w.position(n).expect("alive")))
        .collect();
    Topology::build_naive(&positions, w.range())
}

fn assert_world_matches_oracle<M: Clone + std::fmt::Debug>(w: &mut World<M>, when: &str) {
    let oracle = oracle_of(w);
    for n in w.alive_nodes() {
        assert_eq!(
            w.neighbors(n),
            oracle.neighbors(n),
            "{when}: neighbors of {n:?}"
        );
        assert_eq!(
            w.component_of(n),
            oracle.component_of(n),
            "{when}: component of {n:?}"
        );
    }
    let alive = w.alive_nodes();
    for &a in alive.iter().take(6) {
        for &b in alive.iter().take(6) {
            assert_eq!(
                w.hops_between(a, b),
                oracle.hops(a, b),
                "{when}: {a:?}->{b:?}"
            );
        }
    }
    assert_eq!(w.components(), oracle.components(), "{when}: components");
}

/// Memoized world queries stay correct across every invalidation edge:
/// a node join, a mobility retarget, crossing the topology quantum, and
/// a node removal (crash). Each step re-checks against a fresh naive
/// oracle over the world's instantaneous positions.
#[test]
fn world_cache_invalidates_on_membership_mobility_and_quantum() {
    let config = WorldConfig {
        speed: 20.0,
        topology_quantum: SimDuration::from_millis(100),
        ..WorldConfig::default()
    };
    let mut sim = Sim::new(config, Inert);
    let ids: Vec<NodeId> = (0..12)
        .map(|i| sim.spawn_at(Point::new(f64::from(i) * 90.0, 10.0)))
        .collect();
    sim.run_for(SimDuration::from_millis(10));
    assert_world_matches_oracle(sim.world_mut(), "after initial joins");

    // Warm the memo, then join a node mid-quantum: topo_version bumps,
    // the snapshot (and its BFS/component memos) must be dropped.
    let _ = sim.world_mut().components();
    let newcomer = sim.spawn_at(Point::new(500.0, 120.0));
    assert_world_matches_oracle(sim.world_mut(), "after join");
    assert!(
        !sim.world_mut().neighbors(newcomer).is_empty(),
        "newcomer at 500,120 is in range of the line"
    );

    // Mobility: mark nodes configured so they start moving, then cross
    // several quanta; the quantum bucket rotates and positions drift.
    for &n in &ids {
        sim.world_mut().mark_configured(n);
    }
    sim.run_for(SimDuration::from_millis(350));
    assert_world_matches_oracle(sim.world_mut(), "after mobility across quanta");

    // Crash (abrupt removal): the node must vanish from every query.
    let victim = ids[6];
    let _ = sim.world_mut().hops_between(ids[0], victim); // warm the memo
    sim.world_mut().remove_node(victim);
    assert!(!sim.world_mut().alive_nodes().contains(&victim));
    assert_eq!(sim.world_mut().neighbors(victim), vec![]);
    assert_world_matches_oracle(sim.world_mut(), "after crash");
}

/// Within one quantum with no membership or mobility change, repeated
/// queries are served from the same snapshot and agree with themselves.
#[test]
fn world_queries_stable_within_a_quantum() {
    let mut sim = Sim::new(WorldConfig::default(), Inert);
    for i in 0..10 {
        sim.spawn_at(Point::new(f64::from(i) * 100.0, 0.0));
    }
    let w = sim.world_mut();
    let first: Vec<_> = (0..10).map(|i| w.nodes_within(NodeId::new(i), 3)).collect();
    let comps = w.components();
    for _ in 0..3 {
        for i in 0..10 {
            assert_eq!(w.nodes_within(NodeId::new(i), 3), first[i as usize]);
        }
        assert_eq!(w.components(), comps);
    }
}

/// Parked-vs-moving: a mobility park bumps the version even though the
/// quantum bucket is unchanged.
#[test]
fn world_cache_invalidates_on_park() {
    let config = WorldConfig {
        speed: 20.0,
        ..WorldConfig::default()
    };
    let mut sim = Sim::new(config, Inert);
    let ids: Vec<NodeId> = (0..8)
        .map(|i| sim.spawn_at(Point::new(f64::from(i) * 110.0, 0.0)))
        .collect();
    for &n in &ids {
        sim.world_mut().mark_configured(n);
    }
    sim.run_for(SimDuration::from_secs(2));
    let _ = sim.world_mut().components();
    sim.world_mut().park_node(ids[3]);
    assert_world_matches_oracle(sim.world_mut(), "after park");
}

/// The mobility model actually moves nodes between quanta (guards the
/// "after mobility" leg above against a silently static world).
#[test]
fn mobility_moves_configured_nodes() {
    let arena = Arena::default();
    let mut rng = SimRng::seed_from(3);
    let mut m = MobilityState::parked(Point::new(500.0, 500.0));
    m.retarget(manet_sim::SimTime::ZERO, &arena, 20.0, &mut rng);
    let later = manet_sim::SimTime::ZERO + SimDuration::from_secs(5);
    let p = m.position(later);
    assert!(
        p.distance(Point::new(500.0, 500.0)) > 1.0,
        "node moved: {p}"
    );
}
