//! Property tests for telemetry merging.
//!
//! The sweep harness runs replications on arbitrary worker threads and
//! merges each shard's [`Metrics`] into one aggregate, so the merge must
//! be insensitive to shard order: fold-left, fold-right over a reversed
//! or rotated shard list, and pairwise tree reduction must all render
//! byte-identical JSON. Histograms and fault counters get the same
//! treatment individually, since they are the only compound members.

use manet_sim::{FaultCounters, Histogram, Metrics, MsgCategory};
use proptest::prelude::*;

/// One telemetry operation, encoded as `(kind, value)` so strategies
/// stay primitive. Every mutating entry point of [`Metrics`] is covered.
fn apply(m: &mut Metrics, kind: u8, v: u64) {
    match kind {
        0 => m.add_send(MsgCategory::ALL[(v % 5) as usize], v % 17),
        1 => m.record_config_latency((v % 40) as u32),
        2 => m.record_config_failure(),
        3 => m.record_vote_rounds(1 + v % 3),
        4 => m.record_join_retries(v % 6),
        5 => {
            let f = m.faults_mut();
            f.dropped += v % 7;
            f.delayed += v % 4;
            f.crashes += v % 3;
            f.squats += v % 2;
            f.replayed_claims += v % 5;
        }
        _ => {
            let p = m.perf_mut();
            p.events += v;
            p.deliveries += v % 9;
            p.timers_fired += v % 5;
            p.queue_high_water = p.queue_high_water.max(v.wrapping_mul(3) % 97);
            p.topo_builds += v % 4;
            p.topo_hits += v % 11;
        }
    }
}

fn build(ops: &[(u8, u64)]) -> Metrics {
    let mut m = Metrics::new();
    for &(kind, v) in ops {
        apply(&mut m, kind, v);
    }
    m
}

/// Renders the full observable surface of one aggregate: behavior JSON
/// plus the separately-rendered perf profile.
fn render(m: &Metrics) -> String {
    format!("{}|{}", m.to_json(), m.perf().to_json())
}

fn fold(shards: &[Metrics]) -> Metrics {
    let mut acc = Metrics::new();
    for s in shards {
        acc.merge(s);
    }
    acc
}

/// Pairwise tree reduction — a different association of the same merge.
fn tree(shards: &[Metrics]) -> Metrics {
    let mut layer: Vec<Metrics> = shards.to_vec();
    if layer.is_empty() {
        return Metrics::new();
    }
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            let mut acc = pair[0].clone();
            if let Some(b) = pair.get(1) {
                acc.merge(b);
            }
            next.push(acc);
        }
        layer = next;
    }
    layer.pop().unwrap()
}

fn shard_strategy() -> impl Strategy<Value = Vec<Vec<(u8, u64)>>> {
    prop::collection::vec(prop::collection::vec((0u8..7, 0u64..1000), 0..25), 1..6)
}

proptest! {
    /// Merging shards in any order — forward, reversed, rotated, or as
    /// a pairwise tree — produces byte-identical aggregate JSON.
    #[test]
    fn metrics_merge_is_shard_order_insensitive(
        op_lists in shard_strategy(),
        rot in 0usize..5,
    ) {
        let shards: Vec<Metrics> = op_lists.iter().map(|ops| build(ops)).collect();

        let forward = render(&fold(&shards));

        let mut reversed = shards.clone();
        reversed.reverse();
        prop_assert_eq!(&forward, &render(&fold(&reversed)));

        let mut rotated = shards.clone();
        rotated.rotate_left(rot % shards.len().max(1));
        prop_assert_eq!(&forward, &render(&fold(&rotated)));

        prop_assert_eq!(&forward, &render(&tree(&shards)));
    }

    /// The empty sink is the merge identity on both sides.
    #[test]
    fn empty_metrics_is_merge_identity(ops in prop::collection::vec((0u8..7, 0u64..1000), 0..25)) {
        let m = build(&ops);
        let mut left = Metrics::new();
        left.merge(&m);
        prop_assert_eq!(render(&left), render(&m));
        let mut right = m.clone();
        right.merge(&Metrics::new());
        prop_assert_eq!(render(&right), render(&m));
    }

    /// Histogram merge is associative and commutative: sequential
    /// fold and pairwise tree reduction agree on JSON and quantiles.
    #[test]
    fn histogram_merge_is_order_insensitive(
        sample_lists in prop::collection::vec(
            prop::collection::vec(0u64..100_000, 0..30),
            1..5,
        ),
    ) {
        let hists: Vec<Histogram> = sample_lists
            .iter()
            .map(|samples| {
                let mut h = Histogram::default();
                for &s in samples {
                    h.record(s);
                }
                h
            })
            .collect();

        let mut forward = Histogram::default();
        for h in &hists {
            forward.merge(h);
        }
        let mut backward = Histogram::default();
        for h in hists.iter().rev() {
            backward.merge(h);
        }
        prop_assert_eq!(forward.to_json(), backward.to_json());
        prop_assert_eq!(forward.p50(), backward.p50());
        prop_assert_eq!(forward.p90(), backward.p90());
        prop_assert_eq!(forward.p99(), backward.p99());

        // One big histogram of all samples equals the merge of shards.
        let mut all = Histogram::default();
        for samples in &sample_lists {
            for &s in samples {
                all.record(s);
            }
        }
        prop_assert_eq!(all.to_json(), forward.to_json());
    }

    /// Fault-counter merge commutes field-for-field.
    #[test]
    fn fault_counters_merge_commutes(
        a in (0u64..500, 0u64..500, 0u64..500, 0u64..500, 0u64..500),
        b in (0u64..500, 0u64..500, 0u64..500, 0u64..500, 0u64..500),
    ) {
        let x = FaultCounters {
            dropped: a.0,
            delayed: a.1,
            duplicated: a.2,
            squats: a.3,
            false_reclaims: a.4,
            ..FaultCounters::default()
        };
        let y = FaultCounters {
            crashes: b.0,
            restarts: b.1,
            spoofed_cfms: b.2,
            replayed_claims: b.3,
            dropped: b.4,
            ..FaultCounters::default()
        };
        let mut xy = x;
        xy.merge(&y);
        let mut yx = y;
        yx.merge(&x);
        prop_assert_eq!(xy, yx);
        prop_assert_eq!(xy.total(), x.total() + y.total());
    }
}
