//! Network partition and merging (§V-C).
//!
//! Partitions are identified by a network ID (the lowest address of the
//! network, assigned at creation and inherited by every configured node).
//! Detection is passive: a hello carrying a different network ID means two
//! networks are in contact, and every node of the higher-ID network
//! reacquires an address in the lower-ID one (handled in
//! [`Qbac::on_hello`](crate::Qbac)).
//!
//! This module covers the *isolated cluster head* case: a head cut off
//! from its entire `QDSet` with no other head reachable "becomes the
//! first cluster head in the network and regains all the addresses" —
//! it re-initializes its partition as a fresh network and makes its
//! stranded members reacquire addresses from it.

use crate::msg::Msg;
use crate::protocol::Qbac;
use crate::roles::{HeadState, NodeRole};
use addrspace::{Addr, AddressPool};
use manet_sim::{MsgCategory, NodeId, World};

impl Qbac {
    /// Re-initializes an isolated head's partition (§V-C).
    ///
    /// The head regains the full address space under a fresh random
    /// founder address (= new network ID), so later contact with any
    /// other network is detected and resolved by the merge rule.
    pub(crate) fn reinitialize_network(&mut self, w: &mut World<Msg>, head: NodeId) {
        if self.head_state(head).is_none() {
            return;
        }
        self.stats.reinits += 1;

        let mut pool = AddressPool::from_block(self.cfg.space);
        // Fresh random founder address — see `become_first_head`: the new
        // network's ID must differ from every other live network's.
        let offset = w.rng_mut().range_u64(0..u64::from(self.cfg.space.len())) as u32;
        let ip = self.cfg.space.base().offset(offset);
        pool.allocate(ip, head.index())
            .expect("random address lies inside the fresh space");
        let network_id = ip;
        let mut state = HeadState::new(ip, pool, network_id);
        state.configurer = None;
        state.configurer_ip = None;
        self.roles.insert(head, NodeRole::Head(state));

        // Tell the partition: everyone must reacquire an address here.
        let _ = w.flood(
            head,
            MsgCategory::Maintenance,
            Msg::Reinit {
                network_id,
                force: false,
            },
        );
    }

    /// A node hears that its partition was re-initialized (or that its
    /// network dissolved as a duplicate).
    pub(crate) fn on_reinit(
        &mut self,
        w: &mut World<Msg>,
        node: NodeId,
        _from: NodeId,
        network_id: Addr,
        force: bool,
    ) {
        match self.roles.get(&node) {
            Some(NodeRole::Unconfigured(_)) | None => {}
            Some(role) if !force && role.network_id() == Some(network_id) => {}
            Some(_) => self.rejoin_network(w, node, network_id),
        }
    }
}
