//! Network partition and merging (§V-C).
//!
//! Partitions are identified by a network ID (the lowest address of the
//! network, assigned at creation and inherited by every configured node).
//! Detection is passive: a hello carrying a different network ID means two
//! networks are in contact, and every node of the higher-ID network
//! reacquires an address in the lower-ID one (handled in
//! [`Qbac::on_hello`](crate::Qbac)).
//!
//! This module covers the *isolated cluster head* case: a head cut off
//! from its entire `QDSet` with no other head reachable "becomes the
//! first cluster head in the network and regains all the addresses" —
//! it re-initializes its partition as a fresh network and makes its
//! stranded members reacquire addresses from it.

use crate::msg::{Msg, QuorumOp};
use crate::protocol::Qbac;
use crate::roles::{HeadState, NodeRole};
use crate::vote::VotePurpose;
use addrspace::{Addr, AddrBlock, AddrRecord, AddrStatus, AddressPool};
use proto_io::{FlowKind, FlowStage, MsgCategory, Net, NodeId};

impl Qbac {
    /// Re-initializes an isolated head's partition (§V-C).
    ///
    /// The head regains the full address space under a fresh random
    /// founder address (= new network ID), so later contact with any
    /// other network is detected and resolved by the merge rule.
    pub(crate) fn reinitialize_network(&mut self, w: &mut Net<'_, Msg>, head: NodeId) {
        if self.head_state(head).is_none() {
            return;
        }
        self.stats.reinits += 1;

        let mut pool = AddressPool::from_block(self.cfg.space);
        // Fresh random founder address — see `become_first_head`: the new
        // network's ID must differ from every other live network's.
        let offset = w.rng_range_u64(0..u64::from(self.cfg.space.len())) as u32;
        let ip = self.cfg.space.base().offset(offset);
        pool.allocate(ip, head.index())
            .expect("random address lies inside the fresh space");
        let network_id = ip;
        let mut state = HeadState::new(ip, pool, network_id);
        state.configurer = None;
        state.configurer_ip = None;
        self.roles.insert(head, NodeRole::Head(state));

        // Tell the partition: everyone must reacquire an address here.
        let _ = w.flood(
            head,
            MsgCategory::Maintenance,
            Msg::Reinit {
                network_id,
                force: false,
            },
        );
    }

    /// A node hears that its partition was re-initialized (or that its
    /// network dissolved as a duplicate).
    pub(crate) fn on_reinit(
        &mut self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        _from: NodeId,
        network_id: Addr,
        force: bool,
    ) {
        match self.roles.get(&node) {
            Some(NodeRole::Unconfigured(_)) | None => {}
            Some(role) if !force && role.network_id() == Some(network_id) => {}
            Some(_) => self.rejoin_network(w, node, network_id),
        }
    }

    // ------------------------------------------------------------------
    // Pool-ownership reconciliation after a merge
    // ------------------------------------------------------------------
    //
    // A partition can leave two heads owning the same blocks: while cut
    // off, one side presumes the other dead and reclaims its space
    // (§IV-D), yet both survive the heal. The duplicated ownership is
    // visible in the replicas the heads exchange once back in contact.
    // The head that wins the deterministic tiebreak — lower `(ip, id)`,
    // the same order the replica-merge rule has always used — claims the
    // contested region through the regular quorum machinery
    // (`QuorumOp::ClaimBlocks`, rival excluded from the electorate) and,
    // on success, tells the rival to cede with `OWN_CLAIM`. The rival
    // carves the region out of its pool and hands over the live leases
    // inside it (`OWN_GRANT`); the winner re-homes them.

    /// Scans this head's `QuorumSpace` for rivals whose blocks overlap
    /// its own pool and opens (or feeds) a reconciliation per rival.
    /// Called on every hello tick and after each replica merge, so a
    /// claim dropped by a failed vote or a lost message is retried.
    pub(crate) fn check_ownership_conflicts(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let Some(state) = self.head_state(node) else {
            return;
        };
        let my_ip = state.ip;
        let conflicts: Vec<(NodeId, Addr, Vec<AddrBlock>)> = state
            .quorum_space
            .iter()
            .filter(|(rival, _)| **rival != node)
            .filter_map(|(rival, rep)| {
                let contested: Vec<AddrBlock> = state
                    .pool
                    .blocks()
                    .iter()
                    .flat_map(|own| rep.blocks.iter().filter_map(move |b| own.intersect(b)))
                    .collect();
                (!contested.is_empty()).then_some((*rival, rep.owner_ip, contested))
            })
            .collect();

        for (rival, rival_ip, contested) in conflicts {
            if (my_ip, node) < (rival_ip, rival) {
                // We win the tiebreak: claim, unless a claim against this
                // rival is already in flight.
                let already = self.votes.values().any(|v| {
                    !v.decided
                        && v.allocator == node
                        && matches!(&v.purpose,
                            VotePurpose::OwnBlocks { rival: r, .. } if *r == rival)
                });
                if already {
                    continue;
                }
                w.flow_event(FlowKind::MergeOwnership, node, FlowStage::Started);
                // Refresh our replica first so the electorate can back
                // the claim against its copy of our space.
                self.push_replica(w, node, MsgCategory::Maintenance);
                self.start_vote(
                    w,
                    node,
                    QuorumOp::ClaimBlocks {
                        claimant: node,
                        rival,
                        blocks: contested.clone(),
                    },
                    VotePurpose::OwnBlocks {
                        rival,
                        blocks: contested,
                    },
                    0,
                    MsgCategory::Maintenance,
                );
            } else {
                // We lose: make sure the winner holds our replica, so its
                // own scan sees the conflict and opens the claim.
                let Some(state) = self.head_state(node) else {
                    return;
                };
                let msg = Msg::ReplicaPush {
                    owner: node,
                    owner_ip: state.ip,
                    blocks: state.pool.blocks().to_vec(),
                    table: state.pool.table().clone(),
                    reply_requested: false,
                };
                let _ = w.unicast(node, rival, MsgCategory::Maintenance, msg);
            }
        }
    }

    /// Hardened replay window: accepts `stamp` for `(node, claimant_ip)`
    /// iff it is serially fresh relative to the last accepted one
    /// ([`crate::vote::stamp_fresh`]), recording it on acceptance. The
    /// window is protocol state, so it survives partition heals: a claim
    /// captured before a heal and replayed after it still presents a
    /// stale stamp and is rejected.
    pub(crate) fn claim_stamp_fresh(
        &mut self,
        node: NodeId,
        claimant_ip: Addr,
        stamp: u64,
    ) -> bool {
        let key = (node, claimant_ip);
        if let Some(&last) = self.claim_stamps.get(&key) {
            if !crate::vote::stamp_fresh(last, stamp) {
                return false;
            }
        }
        self.claim_stamps.insert(key, stamp);
        true
    }

    /// The losing head receives `OWN_CLAIM`: the quorum confirmed the
    /// claimant's ownership of `blocks`. Verify the tiebreak, carve the
    /// region out of our pool, and send the drained leases back.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_own_claim(
        &mut self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        from: NodeId,
        claimant_ip: Addr,
        blocks: Vec<AddrBlock>,
        claim_stamp: u64,
        auth: u64,
    ) {
        // Hardened: the claim must carry a tag bound to *us* (a captured
        // claim replayed at a different head never verifies) and a fresh
        // stamp (the same claim replayed at the original recipient is a
        // stale serial). Auth first, so a forged claim cannot burn a
        // stamp.
        if self.cfg.harden {
            if auth != crate::auth::own_claim_tag(self.cfg.auth_key, claimant_ip, node, claim_stamp)
            {
                return;
            }
            if !self.claim_stamp_fresh(node, claimant_ip, claim_stamp) {
                return;
            }
        }
        let Some(state) = self.head_state_mut(node) else {
            // No pool to cede (we already dissolved or demoted): grant
            // vacuously so the claimant closes its flow.
            let _ = w.unicast(
                node,
                from,
                MsgCategory::Maintenance,
                Msg::OwnGrant {
                    blocks,
                    records: Vec::new(),
                },
            );
            return;
        };
        // Re-verify the deterministic tiebreak; a claim we would win
        // ourselves is bogus and ignored.
        if (claimant_ip, from) >= (state.ip, node) {
            return;
        }
        let mut records: Vec<(Addr, AddrRecord)> = Vec::new();
        let mut changed = false;
        for b in &blocks {
            changed |= state.pool.blocks().iter().any(|own| own.overlaps(b));
            records.extend(state.pool.carve(b));
        }
        // Leases that rode away stop being our members.
        for (a, _) in &records {
            state.members.remove(a);
        }
        // Grant even when nothing was ceded (duplicate claim): the reply
        // is what closes the claimant's flow, so it must be idempotent.
        let _ = w.unicast(
            node,
            from,
            MsgCategory::Maintenance,
            Msg::OwnGrant { blocks, records },
        );
        if changed {
            self.push_replica(w, node, MsgCategory::Maintenance);
        }
    }

    /// The winning head receives `OWN_GRANT`: the rival ceded the
    /// contested blocks. Re-home the leases that rode along and drop the
    /// region from our stored replica of the rival.
    pub(crate) fn on_own_grant(
        &mut self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        from: NodeId,
        blocks: Vec<AddrBlock>,
        records: Vec<(Addr, AddrRecord)>,
    ) {
        let Some(state) = self.head_state_mut(node) else {
            return;
        };
        let my_ip = state.ip;
        let network = state.network_id;
        let mut displaced: Vec<NodeId> = Vec::new();
        let mut rehomed: Vec<NodeId> = Vec::new();
        for (addr, rec) in records {
            let AddrStatus::Allocated(holder) = rec.status else {
                continue;
            };
            let holder = NodeId::new(holder);
            if !state.pool.owns(addr) {
                continue; // our shape changed under the claim; let §IV-D recover it
            }
            match state.pool.table().status(addr) {
                AddrStatus::Allocated(mine) if mine == holder.index() => {
                    state.members.insert(addr, holder);
                }
                AddrStatus::Allocated(_) => {
                    // We assigned this address to someone else while
                    // partitioned: a real duplicate. The rival's lease
                    // loses — that node must reconfigure.
                    displaced.push(holder);
                }
                AddrStatus::Free | AddrStatus::Vacant => {
                    state
                        .pool
                        .table_mut()
                        .set(addr, AddrStatus::Allocated(holder.index()));
                    state.members.insert(addr, holder);
                    if holder != node && holder != from {
                        rehomed.push(holder);
                    }
                }
            }
        }
        // The rival no longer owns the ceded region.
        if let Some(rep) = state.quorum_space.get_mut(&from) {
            for b in &blocks {
                rep.blocks = rep.blocks.iter().flat_map(|r| r.subtract(b)).collect();
            }
        }
        for n in displaced {
            let _ = w.unicast(
                node,
                n,
                MsgCategory::Maintenance,
                Msg::Reinit {
                    network_id: network,
                    force: true,
                },
            );
        }
        for n in rehomed {
            let _ = w.unicast(
                node,
                n,
                MsgCategory::Maintenance,
                Msg::AllocatorChange {
                    new_configurer: my_ip,
                },
            );
        }
        self.stats.ownership_reconciliations += 1;
        w.flow_event(FlowKind::MergeOwnership, node, FlowStage::Finalized);
        // The quorum must see the re-homed leases.
        self.push_replica(w, node, MsgCategory::Maintenance);
    }
}

#[cfg(test)]
mod tests {
    use crate::{ProtocolConfig, Qbac};
    use addrspace::Addr;
    use proto_io::NodeId;

    fn hardened() -> Qbac {
        Qbac::new(ProtocolConfig {
            harden: true,
            ..ProtocolConfig::default()
        })
    }

    #[test]
    fn claim_stamp_window_rejects_replay_across_a_heal() {
        let mut q = hardened();
        let (node, claimant) = (NodeId::new(4), Addr::new(0x0A00_0001));
        // Legitimate claim before the partition heals.
        assert!(q.claim_stamp_fresh(node, claimant, 7));
        // The heal changes topology, not protocol state: the window
        // persists, so the captured claim replayed afterwards is stale.
        assert!(!q.claim_stamp_fresh(node, claimant, 7));
        assert!(!q.claim_stamp_fresh(node, claimant, 3));
        // The claimant's next genuine claim still goes through.
        assert!(q.claim_stamp_fresh(node, claimant, 8));
    }

    #[test]
    fn claim_stamp_window_is_per_recipient_and_claimant() {
        let mut q = hardened();
        let claimant = Addr::new(0x0A00_0002);
        assert!(q.claim_stamp_fresh(NodeId::new(1), claimant, 5));
        // A different recipient has its own window: the same stamp is
        // fresh there (the auth tag, not the window, stops cross-victim
        // replays).
        assert!(q.claim_stamp_fresh(NodeId::new(2), claimant, 5));
        // A different claimant at the first recipient is independent too.
        assert!(q.claim_stamp_fresh(NodeId::new(1), Addr::new(0x0A00_0003), 5));
    }

    #[test]
    fn claim_stamp_window_accepts_wrapped_counter() {
        let mut q = hardened();
        let (node, claimant) = (NodeId::new(9), Addr::new(0x0A00_0004));
        assert!(q.claim_stamp_fresh(node, claimant, u64::MAX));
        // The counter wrapped: 1 is ahead of u64::MAX, not behind it.
        assert!(q.claim_stamp_fresh(node, claimant, 1));
        assert!(!q.claim_stamp_fresh(node, claimant, u64::MAX));
    }
}
