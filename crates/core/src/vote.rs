//! The quorum-collection engine (§II-C, §II-D, §V-B).
//!
//! Every allocation-affecting operation runs a vote over the allocator's
//! active `QDSet`. The allocator's own copy counts as one implicit grant;
//! external members vote by checking their replicas. A strict majority of
//! `|electorate| + 1` copies carries the vote, with the dynamic-linear
//! tiebreak for even counts: the *distinguished node* is the head whose
//! `IPSpace` contains the address (Definition 2) — the allocator itself
//! for ordinary allocations, the space's owner for borrows.
//!
//! Unresponsive members trigger the §V-B adjustment: after `T_d` they are
//! suspended (quorum shrink), probed with `REP_REQ`, and either restored
//! on `REP_ACK` or reclaimed after `T_r`.

use crate::msg::{Msg, QuorumOp};
use crate::protocol::{tag, Qbac};
use addrspace::{Addr, AddrBlock};
use proto_io::{FlowKind, FlowStage, MsgCategory, Net, NodeId};
use quorum::{DynamicLinearRule, VersionStamp};
use std::collections::BTreeSet;

/// RFC-1982-style serial-number freshness over the `u64` stamp space:
/// `stamp` is fresh relative to `last` iff it is not equal to it and
/// lies in the half-space ahead of it. Monotonic counters that wrap
/// stay comparable; a replayed (older or equal) stamp is never fresh.
pub(crate) fn stamp_fresh(last: u64, stamp: u64) -> bool {
    stamp != last && stamp.wrapping_sub(last) < 1 << 63
}

/// Why a vote is being collected; determines what happens on completion.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum VotePurpose {
    /// Configure `requestor` as a common node with `addr` from the
    /// allocator's own space.
    CommonConfig { requestor: NodeId, addr: Addr },
    /// Configure `requestor` as a common node with `addr` borrowed from
    /// `owner`'s space (§V-A).
    Borrow {
        requestor: NodeId,
        owner: NodeId,
        addr: Addr,
    },
    /// Split half the allocator's block for `requestor`, a new head.
    HeadConfig { requestor: NodeId },
    /// Claim the contested `blocks` from `rival` after a partition
    /// merge left both heads owning them (pool-ownership
    /// reconciliation). The allocator is the deterministic tiebreak
    /// winner; on success it sends `OWN_CLAIM` to the rival.
    OwnBlocks {
        rival: NodeId,
        blocks: Vec<AddrBlock>,
    },
}

/// An in-flight quorum collection at an allocator.
#[derive(Debug, Clone)]
pub(crate) struct PendingVote {
    pub allocator: NodeId,
    pub purpose: VotePurpose,
    /// Members polled in this round.
    pub polled: Vec<NodeId>,
    pub grants: BTreeSet<NodeId>,
    pub refusals: BTreeSet<NodeId>,
    /// The distinguished node if it is *not* the allocator (borrows).
    pub distinguished: Option<NodeId>,
    /// Freshest stamp seen among refusing replicas (diagnostic).
    pub freshest_refusal: VersionStamp,
    /// Critical-path hop cost of this collection. The vote requests go
    /// out in parallel and the allocator proceeds as soon as a majority
    /// has answered, so latency is the round trip of the *k-th fastest*
    /// member, where k grants complete the quorum — not the slowest and
    /// not the sum. Total hop *overhead* is still charged to
    /// [`manet_sim::Metrics`] per message.
    pub hops: u32,
    /// Whether the §V-B shrink already ran for this vote.
    pub shrunk: bool,
    /// Extra hops the requestor already spent (carried through from the
    /// triggering request).
    pub req_hops: u32,
    /// Set once decided, so late votes and the timeout are ignored.
    pub decided: bool,
}

impl PendingVote {
    /// Evaluates the quorum condition over the currently responding
    /// electorate: `polled` voters plus the allocator's implicit grant.
    pub(crate) fn quorum_met(&self) -> bool {
        let voters = self.polled.len() + 1;
        let grants = self.grants.len() + 1;
        let has_distinguished = match self.distinguished {
            None => true, // the allocator itself holds the address
            Some(d) => self.grants.contains(&d),
        };
        DynamicLinearRule::new(voters).is_quorum_with(grants, has_distinguished)
    }

    /// Returns `true` if enough refusals arrived that the quorum can no
    /// longer be met even if every silent member granted.
    pub(crate) fn quorum_impossible(&self) -> bool {
        let voters = self.polled.len() + 1;
        let potential = voters - self.refusals.len();
        let has_distinguished = match self.distinguished {
            None => true,
            Some(d) => !self.refusals.contains(&d),
        };
        !DynamicLinearRule::new(voters).is_quorum_with(potential, has_distinguished)
    }
}

impl Qbac {
    /// Starts a quorum collection at `allocator`. With an empty
    /// electorate (a lone head) the vote succeeds immediately.
    pub(crate) fn start_vote(
        &mut self,
        w: &mut Net<'_, Msg>,
        allocator: NodeId,
        op: QuorumOp,
        purpose: VotePurpose,
        req_hops: u32,
        category: MsgCategory,
    ) {
        let Some(head) = self.head_state(allocator) else {
            return;
        };
        let mut electorate = head.electorate();
        // For borrows the owner must be polled even if outside the
        // allocator's QDSet — its copy is the distinguished one.
        let distinguished = match &purpose {
            VotePurpose::Borrow { owner, .. } => {
                if !electorate.contains(owner) && w.is_alive(*owner) {
                    electorate.push(*owner);
                }
                Some(*owner)
            }
            // The contested party must not vote on its own dispossession.
            VotePurpose::OwnBlocks { rival, .. } => {
                let rival = *rival;
                electorate.retain(|m| *m != rival);
                None
            }
            _ => None,
        };

        let seq = self.fresh_seq();
        let mut vote = PendingVote {
            allocator,
            purpose,
            polled: Vec::new(),
            grants: BTreeSet::new(),
            refusals: BTreeSet::new(),
            distinguished,
            freshest_refusal: VersionStamp::ZERO,
            hops: 0,
            shrunk: false,
            req_hops,
            decided: false,
        };

        let mut rtts: Vec<u32> = Vec::new();
        for member in electorate {
            // A member we cannot reach is still polled: the sender has no
            // way to know the message was lost, so it waits out T_d like
            // the paper's allocator does — this is how vanished heads get
            // detected (§V-B).
            if let Ok(h) = w.unicast(
                allocator,
                member,
                category,
                Msg::QuorumClt {
                    seq,
                    op: op.clone(),
                },
            ) {
                rtts.push(2 * h)
            }
            vote.polled.push(member);
        }
        // Latency: the k-th fastest round trip, where k external grants
        // complete a majority of (polled + self).
        rtts.sort_unstable();
        let threshold = vote.polled.len().div_ceil(2) + 1;
        let external_needed = threshold.saturating_sub(1);
        vote.hops = match external_needed {
            0 => 0,
            k => rtts
                .get(k - 1)
                .copied()
                .unwrap_or_else(|| rtts.last().copied().unwrap_or(0)),
        };

        if vote.polled.is_empty() {
            // Singleton electorate: the allocator's own copy is a
            // majority of one.
            vote.decided = true;
            self.votes.insert(seq, vote);
            self.finish_vote(w, seq, true);
            return;
        }

        let td = self.cfg.td;
        w.set_timer(allocator, td, tag::mk(tag::VOTE_TIMEOUT, seq));
        self.votes.insert(seq, vote);
    }

    /// A `QDSet` member answers a `QUORUM_CLT` by checking its replica
    /// (or its own pool, when it is the owner being asked for a borrow).
    pub(crate) fn on_quorum_clt(
        &mut self,
        w: &mut Net<'_, Msg>,
        member: NodeId,
        allocator: NodeId,
        seq: u64,
        op: QuorumOp,
    ) {
        let (grant, stamp) = match (&op, self.head_state(member)) {
            (QuorumOp::CheckAddr { owner, addr }, Some(head)) => {
                if *owner == member {
                    // We own the space (borrow case): authoritative copy.
                    let rec = head.pool.table().record(*addr);
                    (
                        rec.status.is_available() && head.pool.owns(*addr),
                        rec.stamp,
                    )
                } else if let Some(rep) = head.quorum_space.get(owner) {
                    let rec = rep.table.record(*addr);
                    (rec.status.is_available(), rec.stamp)
                } else {
                    (false, VersionStamp::ZERO)
                }
            }
            (QuorumOp::SplitBlock { owner }, Some(head)) => {
                // Granting a split only requires holding a copy of the
                // owner's space; the vote serializes concurrent splits.
                (head.quorum_space.contains_key(owner), VersionStamp::ZERO)
            }
            (
                QuorumOp::ClaimBlocks {
                    claimant,
                    rival,
                    blocks,
                },
                Some(head),
            ) => {
                let touches = |owned: &[AddrBlock]| {
                    blocks.iter().any(|c| owned.iter().any(|b| b.overlaps(c)))
                };
                // Our replica of the claimant backs the claim outright.
                let backed = head
                    .quorum_space
                    .get(claimant)
                    .is_some_and(|rep| touches(&rep.blocks));
                // A head other than the two disputants (including
                // ourselves) also claiming the region contradicts it.
                let contradicted = touches(head.pool.blocks())
                    || head
                        .quorum_space
                        .iter()
                        .any(|(h, rep)| h != claimant && h != rival && touches(&rep.blocks));
                // With no contradicting knowledge, defer to the
                // deterministic tiebreak that selected the claimant.
                (backed || !contradicted, VersionStamp::ZERO)
            }
            // Non-heads hold no replicas and refuse.
            (_, None) => (false, VersionStamp::ZERO),
        };
        let auth = crate::auth::quorum_cfm_tag(self.cfg.auth_key, member, seq, grant);
        let _ = w.unicast(
            member,
            allocator,
            MsgCategory::Configuration,
            Msg::QuorumCfm {
                seq,
                grant,
                stamp,
                auth,
            },
        );
    }

    /// The allocator tallies a `QUORUM_CFM`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_quorum_cfm(
        &mut self,
        w: &mut Net<'_, Msg>,
        allocator: NodeId,
        voter: NodeId,
        seq: u64,
        grant: bool,
        stamp: VersionStamp,
        auth: u64,
    ) {
        // Hardened: a vote must carry the tag only a key-holding member
        // can compute for `(voter, seq, grant)` — forged or spoofed-
        // origin votes are discarded before they touch the tally.
        if self.cfg.harden
            && auth != crate::auth::quorum_cfm_tag(self.cfg.auth_key, voter, seq, grant)
        {
            return;
        }
        let Some(vote) = self.votes.get_mut(&seq) else {
            return;
        };
        if vote.decided || vote.allocator != allocator || !vote.polled.contains(&voter) {
            return;
        }
        if grant {
            vote.grants.insert(voter);
        } else {
            vote.refusals.insert(voter);
            vote.freshest_refusal = vote.freshest_refusal.max(stamp);
        }
        if vote.quorum_met() {
            vote.decided = true;
            self.finish_vote(w, seq, true);
        } else if vote.quorum_impossible() {
            vote.decided = true;
            self.finish_vote(w, seq, false);
        }
    }

    /// `T_d` expired: run the §V-B quorum adjustment — suspend silent
    /// members, probe them with `REP_REQ`, and re-evaluate the vote over
    /// the shrunken electorate.
    pub(crate) fn on_vote_timeout(&mut self, w: &mut Net<'_, Msg>, allocator: NodeId, seq: u64) {
        let Some(vote) = self.votes.get(&seq) else {
            return;
        };
        if vote.decided || vote.allocator != allocator {
            return;
        }
        let silent: Vec<NodeId> = vote
            .polled
            .iter()
            .filter(|m| !vote.grants.contains(m) && !vote.refusals.contains(m))
            .copied()
            .collect();

        if !silent.is_empty() {
            self.stats.quorum_shrinks += 1;
            for m in &silent {
                self.suspend_member(w, allocator, *m);
            }
        }

        let Some(vote) = self.votes.get_mut(&seq) else {
            return;
        };
        // Re-evaluate over responders only.
        vote.polled.retain(|m| !silent.contains(m));
        vote.shrunk = true;
        let outcome = if vote.quorum_met() {
            Some(true)
        } else {
            // Even a full house of remaining silence can't help now:
            // everyone left has voted.
            Some(false)
        };
        if let Some(ok) = outcome {
            vote.decided = true;
            self.finish_vote(w, seq, ok);
        }
    }

    /// Suspends a silent `QDSet` member and probes it (§V-B).
    pub(crate) fn suspend_member(&mut self, w: &mut Net<'_, Msg>, head: NodeId, member: NodeId) {
        let Some(state) = self.head_state_mut(head) else {
            return;
        };
        let Some(ip) = state.qd_set.get(&member).copied() else {
            return;
        };
        state.suspended.insert(member, ip);
        if self.probes.contains_key(&(head, member)) {
            return;
        }
        let _ = w.unicast(head, member, MsgCategory::Maintenance, Msg::RepReq);
        let tr = self.cfg.tr;
        w.set_timer(head, tr, tag::mk(tag::REP_TIMEOUT, member.index()));
        self.probes.insert((head, member), 1);
    }

    /// A probed member answered: restore it to the active electorate,
    /// and cancel any reclamation we started against it (a mobility
    /// pocket, not a death).
    pub(crate) fn on_rep_ack(&mut self, w: &mut Net<'_, Msg>, head: NodeId, member: NodeId) {
        self.probes.remove(&(head, member));
        if self.reclaim_initiators.get(&member) == Some(&head) {
            if self.reclaims.remove(&member).is_some() {
                w.flow_event(FlowKind::Reclaim, member, FlowStage::Abandoned);
            }
            self.reclaim_initiators.remove(&member);
        }
        let member_ip = self.head_state(member).map(|s| s.ip).or_else(|| {
            self.head_state(head)
                .and_then(|s| s.suspended.get(&member).copied())
        });
        if let Some(state) = self.head_state_mut(head) {
            if let Some(ip) = state.suspended.remove(&member) {
                state.qd_set.insert(member, member_ip.unwrap_or(ip));
            }
        }
    }

    /// `T_r` expired without a `REP_ACK`. Mobility makes one missed probe
    /// a weak signal, so the probe is retried a few times; only a member
    /// that stays silent is declared gone and reclaimed (§V-B → §IV-D),
    /// or, if we are left with nothing, the partition re-initializes.
    pub(crate) fn on_rep_timeout(&mut self, w: &mut Net<'_, Msg>, head: NodeId, member: NodeId) {
        let Some(attempts) = self.probes.get(&(head, member)).copied() else {
            return; // answered in time
        };
        if attempts < self.cfg.probe_attempts {
            let _ = w.unicast(head, member, MsgCategory::Maintenance, Msg::RepReq);
            let tr = self.cfg.tr;
            w.set_timer(head, tr, tag::mk(tag::REP_TIMEOUT, member.index()));
            self.probes.insert((head, member), attempts + 1);
            return;
        }
        self.probes.remove(&(head, member));
        let Some(state) = self.head_state_mut(head) else {
            return;
        };
        let member_ip = state
            .suspended
            .remove(&member)
            .or_else(|| state.qd_set.remove(&member));
        state.qd_set.remove(&member);
        let Some(member_ip) = member_ip else {
            return;
        };
        // With a replica of the vanished head we can reclaim its space
        // (§IV-D). Without one, and with nothing left to allocate from
        // and no head in reach, we are an isolated cluster head and
        // re-initialize the partition (§V-C).
        let has_replica = state.quorum_space.contains_key(&member);
        let exhausted = state.pool.free_count() == 0 && state.quorum_space.is_empty();
        if has_replica {
            self.start_reclamation(w, head, member, member_ip);
        } else if self.head_state(head).is_some_and(|s| s.qd_set.is_empty())
            && exhausted
            && self.heads_within(w, head, u32::MAX, None).is_empty()
        {
            self.reinitialize_network(w, head);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::stamp_fresh;

    #[test]
    fn stamp_window_boundary_rejects_equal_accepts_successor() {
        // The boundary stamp (exactly the last seen value) is a replay.
        assert!(!stamp_fresh(5, 5));
        assert!(stamp_fresh(5, 6));
        assert!(!stamp_fresh(5, 4));
        // Zero against zero is still a replay; the first real stamp of a
        // fresh counter (1 against an initial 0) is accepted.
        assert!(!stamp_fresh(0, 0));
        assert!(stamp_fresh(0, 1));
    }

    #[test]
    fn stamp_window_wraps_across_u64_max() {
        // A counter near the top of the space wraps: small stamps are
        // *ahead* of huge ones, not behind them.
        assert!(stamp_fresh(u64::MAX - 1, 2));
        assert!(stamp_fresh(u64::MAX, 0));
        // ...but the old huge stamp is stale relative to the wrapped one.
        assert!(!stamp_fresh(2, u64::MAX - 1));
    }

    #[test]
    fn stamp_window_rejects_stale_half_space() {
        assert!(!stamp_fresh(10, 3));
        // Exactly half the space ahead is the ambiguous point; the
        // strict `< 2^63` window rejects it (RFC 1982's undefined case
        // resolved conservatively).
        assert!(!stamp_fresh(0, 1 << 63));
        assert!(stamp_fresh(0, (1 << 63) - 1));
    }
}
