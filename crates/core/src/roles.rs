use addrspace::{Addr, AddrBlock, AddressPool, AllocationTable};
use proto_io::NodeId;
use std::collections::BTreeMap;

/// A copy of another cluster head's space held in this head's
/// `QuorumSpace` (§IV-A): its blocks plus its allocation table. Freshness
/// is tracked per address inside the table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicatedSpace {
    /// The owner's address, for routing returns.
    pub owner_ip: Addr,
    /// The owner's blocks as of the last push.
    pub blocks: Vec<AddrBlock>,
    /// The owner's per-address allocation records.
    pub table: AllocationTable,
}

impl ReplicatedSpace {
    /// Total number of addresses in the replicated blocks.
    #[must_use]
    pub fn space_len(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.len())).sum()
    }

    /// The lowest address in the replicated space that the table records
    /// as available.
    #[must_use]
    pub fn first_free(&self) -> Option<Addr> {
        self.blocks
            .iter()
            .flat_map(|b| b.iter())
            .find(|a| self.table.status(*a).is_available())
    }
}

/// State of a configured common node.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonState {
    /// The node's address.
    pub ip: Addr,
    /// The cluster head that configured it (by simulator id and address).
    pub configurer: NodeId,
    /// The configurer's address.
    pub configurer_ip: Addr,
    /// The nearest head recorded by the last `UPDATE_LOC`, if the node
    /// has drifted from its configurer (§IV-C.1).
    pub administrator: Option<NodeId>,
    /// Network ID (lowest address of the network) for partition
    /// detection.
    pub network_id: Addr,
}

/// State of a cluster head.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadState {
    /// The head's own address.
    pub ip: Addr,
    /// The head's `IPSpace`: blocks it owns and their allocation state.
    pub pool: AddressPool,
    /// Replicas of adjacent heads' spaces (`QuorumSpace`), keyed by owner.
    pub quorum_space: BTreeMap<NodeId, ReplicatedSpace>,
    /// Adjacent cluster heads within three hops (`QDSet`), with their
    /// addresses.
    pub qd_set: BTreeMap<NodeId, Addr>,
    /// `QDSet` members currently excluded from voting after a quorum
    /// shrink (§V-B); probed with `REP_REQ` and either restored or
    /// reclaimed.
    pub suspended: BTreeMap<NodeId, Addr>,
    /// The head that configured this one, if any (the first head has
    /// none).
    pub configurer: Option<NodeId>,
    /// The configurer's address.
    pub configurer_ip: Option<Addr>,
    /// Common nodes this head configured, by address.
    pub members: BTreeMap<Addr, NodeId>,
    /// Network ID for partition detection.
    pub network_id: Addr,
}

impl HeadState {
    /// Creates the state of a head owning `pool`, with its own `ip`
    /// already allocated inside it.
    #[must_use]
    pub fn new(ip: Addr, pool: AddressPool, network_id: Addr) -> Self {
        HeadState {
            ip,
            pool,
            quorum_space: BTreeMap::new(),
            qd_set: BTreeMap::new(),
            suspended: BTreeMap::new(),
            configurer: None,
            configurer_ip: None,
            members: BTreeMap::new(),
            network_id,
        }
    }

    /// The head's *extended* space: its own plus everything replicated in
    /// its `QuorumSpace` — the quantity Figure 12 reports (the paper
    /// finds it up to 5.5× the own space).
    #[must_use]
    pub fn extended_space(&self) -> u64 {
        self.pool.total_len()
            + self
                .quorum_space
                .values()
                .map(ReplicatedSpace::space_len)
                .sum::<u64>()
    }

    /// Current quorum electorate: the active (non-suspended) `QDSet`.
    #[must_use]
    pub fn electorate(&self) -> Vec<NodeId> {
        self.qd_set
            .keys()
            .filter(|n| !self.suspended.contains_key(n))
            .copied()
            .collect()
    }
}

/// A node's current role in the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeRole {
    /// Still acquiring an address.
    Unconfigured(JoinState),
    /// Configured as a common node.
    Common(CommonState),
    /// Configured as a cluster head.
    Head(HeadState),
}

impl NodeRole {
    /// The node's address, if configured.
    #[must_use]
    pub fn ip(&self) -> Option<Addr> {
        match self {
            NodeRole::Unconfigured(_) => None,
            NodeRole::Common(c) => Some(c.ip),
            NodeRole::Head(h) => Some(h.ip),
        }
    }

    /// The node's network ID, if configured.
    #[must_use]
    pub fn network_id(&self) -> Option<Addr> {
        match self {
            NodeRole::Unconfigured(_) => None,
            NodeRole::Common(c) => Some(c.network_id),
            NodeRole::Head(h) => Some(h.network_id),
        }
    }

    /// Returns `true` for cluster heads.
    #[must_use]
    pub fn is_head(&self) -> bool {
        matches!(self, NodeRole::Head(_))
    }

    /// Returns `true` once configured (common or head).
    #[must_use]
    pub fn is_configured(&self) -> bool {
        !matches!(self, NodeRole::Unconfigured(_))
    }
}

/// Progress of an unconfigured node's join attempt.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JoinState {
    /// Hop cost spent on this node's configuration so far (its own
    /// messages; the allocator adds its quorum costs via `spent_hops`).
    pub hops_spent: u32,
    /// Attempts so far (for the first-node `Max_r` bound and join
    /// retries).
    pub attempts: u32,
    /// The allocator currently being tried.
    pub pending_allocator: Option<NodeId>,
    /// Set when this node is waiting out the first-node procedure (`T_e`
    /// retries, becoming the first head when they exhaust).
    pub first_node_probe: bool,
    /// When rejoining after a network merge (§V-C), the network the node
    /// must join; `None` joins any network.
    pub target_network: Option<Addr>,
    /// Set once the node has ever observed a configured network. Such a
    /// node never runs the first-node bootstrap — it keeps retrying
    /// until reconnected (founding a second network would only create a
    /// duplicate space that a later merge must dissolve).
    pub seen_network: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use addrspace::AddrBlock;

    #[test]
    fn replicated_space_len_and_first_free() {
        let mut rs = ReplicatedSpace {
            owner_ip: Addr::new(0),
            blocks: vec![
                AddrBlock::new(Addr::new(0), 4).unwrap(),
                AddrBlock::new(Addr::new(100), 4).unwrap(),
            ],
            table: AllocationTable::new(),
        };
        assert_eq!(rs.space_len(), 8);
        assert_eq!(rs.first_free(), Some(Addr::new(0)));
        for i in 0..4 {
            rs.table
                .set(Addr::new(i), addrspace::AddrStatus::Allocated(1));
        }
        assert_eq!(rs.first_free(), Some(Addr::new(100)));
    }

    #[test]
    fn extended_space_sums_replicas() {
        let pool = AddressPool::from_block(AddrBlock::new(Addr::new(0), 16).unwrap());
        let mut h = HeadState::new(Addr::new(0), pool, Addr::new(0));
        assert_eq!(h.extended_space(), 16);
        h.quorum_space.insert(
            NodeId::new(2),
            ReplicatedSpace {
                owner_ip: Addr::new(100),
                blocks: vec![AddrBlock::new(Addr::new(100), 32).unwrap()],
                table: AllocationTable::new(),
            },
        );
        assert_eq!(h.extended_space(), 48);
    }

    #[test]
    fn electorate_excludes_suspended() {
        let pool = AddressPool::from_block(AddrBlock::new(Addr::new(0), 4).unwrap());
        let mut h = HeadState::new(Addr::new(0), pool, Addr::new(0));
        h.qd_set.insert(NodeId::new(1), Addr::new(10));
        h.qd_set.insert(NodeId::new(2), Addr::new(20));
        h.suspended.insert(NodeId::new(2), Addr::new(20));
        assert_eq!(h.electorate(), vec![NodeId::new(1)]);
    }

    #[test]
    fn role_accessors() {
        let role = NodeRole::Unconfigured(JoinState::default());
        assert_eq!(role.ip(), None);
        assert!(!role.is_configured());
        assert!(!role.is_head());

        let common = NodeRole::Common(CommonState {
            ip: Addr::new(5),
            configurer: NodeId::new(0),
            configurer_ip: Addr::new(0),
            administrator: None,
            network_id: Addr::new(0),
        });
        assert_eq!(common.ip(), Some(Addr::new(5)));
        assert_eq!(common.network_id(), Some(Addr::new(0)));
        assert!(common.is_configured());
    }
}
