//! HMAC-shaped message-origin authentication stubs.
//!
//! The paper's protocol assumes every node is honest; the Byzantine
//! adversary plane (see the fault plan's `attack` directives) breaks
//! that assumption, and the hardened protocol variant
//! ([`ProtocolConfig::harden`](crate::ProtocolConfig)) answers with
//! origin authentication on the five security-critical messages:
//! `COM_CFG` grants, `QUORUM_CFM` votes, `QUORUM_COMMIT` record
//! updates, `ADDR_REC` reclamation floods, and `OWN_CLAIM` ownership
//! transfers.
//!
//! The tag here is a *stub*, not cryptography: a 64-bit keyed
//! mix shaped like HMAC (inner hash over origin and payload under the
//! key with an inner pad, outer hash under the key with an outer pad).
//! The scenario key models the deployment credential all honest members
//! hold; the adversary is outside that trust domain, so the tags it
//! forges (computed under a tainted key) never verify. A real
//! deployment would substitute per-identity signatures — the protocol
//! changes (which messages carry tags, who verifies, what a failed
//! check does) are exactly what this module lets the simulation
//! exercise.
//!
//! Honest senders always compute tags (pure arithmetic, no RNG, no
//! extra messages), so enabling or disabling hardening never perturbs
//! honest-path scheduling: an unhardened run with an empty adversary
//! plan stays byte-identical to pre-adversary builds.

use addrspace::{Addr, AddrRecord, AddrStatus};
use proto_io::NodeId;

/// Default scenario-wide authentication key ("QBACKEY1").
pub const SCENARIO_AUTH_KEY: u64 = 0x5142_4143_4b45_5931;

/// XOR mask modelling the adversary's forged credential: attackers tag
/// with `key ^ ADVERSARY_TAINT`, which never verifies against honest
/// recipients' key.
pub const ADVERSARY_TAINT: u64 = 0xDEC0_DE0F_F00D_5EED;

const IPAD: u64 = 0x3636_3636_3636_3636;
const OPAD: u64 = 0x5c5c_5c5c_5c5c_5c5c;

/// SplitMix64 finalizer: the stand-in compression function.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// HMAC-shaped keyed tag over `(origin, payload)`.
#[must_use]
pub fn auth_tag(key: u64, origin: u64, payload: u64) -> u64 {
    let inner = mix((key ^ IPAD)
        .wrapping_add(mix(origin))
        .wrapping_add(mix(payload).rotate_left(17)));
    mix((key ^ OPAD).wrapping_add(inner))
}

/// Tag for a `COM_CFG` grant: binds the allocator, the assigned
/// address, and the requestor, so a grant cannot be forged for (or
/// redirected to) another node.
#[must_use]
pub fn com_cfg_tag(key: u64, configurer: Addr, ip: Addr, requestor: NodeId) -> u64 {
    auth_tag(
        key,
        u64::from(configurer.bits()),
        (u64::from(ip.bits()) << 20) ^ requestor.index(),
    )
}

/// Tag for a `QUORUM_CFM` vote: binds the voter, the collection round,
/// and the verdict, so votes cannot be cast in another member's name.
#[must_use]
pub fn quorum_cfm_tag(key: u64, voter: NodeId, seq: u64, grant: bool) -> u64 {
    auth_tag(key, voter.index(), (seq << 1) | u64::from(grant))
}

/// Tag for a `QUORUM_COMMIT` record update: binds the space's owner,
/// the address, and the committed record (status and stamp). The commit
/// is the one message that rewrites a head's *authoritative* table
/// remotely, so a reflected commit with the status flipped and a
/// superseding stamp — the spoof-cfm attacker's second move — must
/// never verify.
#[must_use]
pub fn quorum_commit_tag(key: u64, owner: NodeId, addr: Addr, record: AddrRecord) -> u64 {
    let status_word = match record.status {
        AddrStatus::Free => 0,
        AddrStatus::Vacant => 1,
        AddrStatus::Allocated(n) => 2 ^ n.rotate_left(2),
    };
    auth_tag(
        key,
        owner.index() ^ (u64::from(addr.bits()) << 24),
        record.stamp.get() ^ status_word.rotate_left(48),
    )
}

/// Tag for an `ADDR_REC` reclamation flood: binds the initiator and the
/// reclaimed head's address, so reclamations cannot be injected for
/// live leases by nodes outside the trust domain.
#[must_use]
pub fn addr_rec_tag(key: u64, initiator: NodeId, target_ip: Addr) -> u64 {
    auth_tag(key, initiator.index(), u64::from(target_ip.bits()))
}

/// Tag for an `OWN_CLAIM` ownership transfer: binds the claimant, the
/// *recipient*, and the claim stamp. Binding the recipient means a
/// captured claim replayed at a different victim never verifies;
/// replaying it at the same victim is caught by the stamp window
/// (see [`stamp_fresh`](crate::vote::stamp_fresh)).
#[must_use]
pub fn own_claim_tag(key: u64, claimant_ip: Addr, recipient: NodeId, claim_stamp: u64) -> u64 {
    auth_tag(
        key,
        u64::from(claimant_ip.bits()) ^ recipient.index().rotate_left(32),
        claim_stamp,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_deterministic_and_key_sensitive() {
        let t = auth_tag(SCENARIO_AUTH_KEY, 7, 9);
        assert_eq!(t, auth_tag(SCENARIO_AUTH_KEY, 7, 9));
        assert_ne!(t, auth_tag(SCENARIO_AUTH_KEY ^ ADVERSARY_TAINT, 7, 9));
        assert_ne!(t, auth_tag(SCENARIO_AUTH_KEY, 8, 9));
        assert_ne!(t, auth_tag(SCENARIO_AUTH_KEY, 7, 10));
    }

    #[test]
    fn com_cfg_tag_binds_requestor() {
        let k = SCENARIO_AUTH_KEY;
        let (c, ip) = (Addr::new(10), Addr::new(20));
        assert_ne!(
            com_cfg_tag(k, c, ip, NodeId::new(1)),
            com_cfg_tag(k, c, ip, NodeId::new(2))
        );
    }

    #[test]
    fn quorum_cfm_tag_binds_voter_seq_and_verdict() {
        let k = SCENARIO_AUTH_KEY;
        let base = quorum_cfm_tag(k, NodeId::new(3), 5, true);
        assert_ne!(base, quorum_cfm_tag(k, NodeId::new(4), 5, true));
        assert_ne!(base, quorum_cfm_tag(k, NodeId::new(3), 6, true));
        assert_ne!(base, quorum_cfm_tag(k, NodeId::new(3), 5, false));
    }

    #[test]
    fn quorum_commit_tag_binds_record_status_and_stamp() {
        use quorum::VersionStamp;
        let k = SCENARIO_AUTH_KEY;
        let rec = |status, stamp| AddrRecord {
            status,
            stamp: VersionStamp::new(stamp),
        };
        let base = quorum_commit_tag(
            k,
            NodeId::new(1),
            Addr::new(9),
            rec(AddrStatus::Allocated(4), 7),
        );
        assert_ne!(
            base,
            quorum_commit_tag(k, NodeId::new(1), Addr::new(9), rec(AddrStatus::Vacant, 7)),
            "flipping the status must change the tag"
        );
        assert_ne!(
            base,
            quorum_commit_tag(
                k,
                NodeId::new(1),
                Addr::new(9),
                rec(AddrStatus::Allocated(4), 8)
            ),
            "bumping the stamp must change the tag"
        );
        assert_ne!(
            base,
            quorum_commit_tag(
                k,
                NodeId::new(2),
                Addr::new(9),
                rec(AddrStatus::Allocated(4), 7)
            )
        );
    }

    #[test]
    fn own_claim_tag_binds_recipient_and_stamp() {
        let k = SCENARIO_AUTH_KEY;
        let c = Addr::new(42);
        let base = own_claim_tag(k, c, NodeId::new(1), 9);
        assert_ne!(base, own_claim_tag(k, c, NodeId::new(2), 9));
        assert_ne!(base, own_claim_tag(k, c, NodeId::new(1), 10));
    }
}
