//! Binary wire format for protocol messages.
//!
//! The simulator passes [`Msg`] values by clone, but a deployable
//! implementation needs an on-air encoding. This module provides a
//! compact, length-delimited binary codec over [`bytes`], used by the
//! harness to report *byte* overhead next to the paper's hop counts —
//! a measurement the paper does not give but a deployment would want.
//!
//! Layout: one tag byte, then fields in order, integers big-endian.
//! Tables are encoded as `(count, [addr, status, owner?, stamp]*)`.
//!
//! # Example
//!
//! ```
//! use qbac_core::{wire, Msg};
//!
//! let msg = Msg::ComReq;
//! let bytes = wire::encode(&msg);
//! assert_eq!(wire::decode(&bytes)?, msg);
//! # Ok::<(), qbac_core::wire::WireError>(())
//! ```

use crate::msg::{Msg, QuorumOp};
use addrspace::{Addr, AddrBlock, AddrRecord, AddrStatus, AllocationTable};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use proto_io::NodeId;
use quorum::VersionStamp;
use std::error::Error;
use std::fmt;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unknown message or status tag.
    BadTag(u8),
    /// A decoded block was structurally invalid.
    BadBlock,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            WireError::BadBlock => write!(f, "invalid address block"),
        }
    }
}

impl Error for WireError {}

mod tags {
    pub const HELLO: u8 = 0x01;
    pub const COM_REQ: u8 = 0x02;
    pub const COM_CFG: u8 = 0x03;
    pub const COM_ACK: u8 = 0x04;
    pub const COM_REJ: u8 = 0x05;
    pub const CH_REQ: u8 = 0x06;
    pub const CH_PRP: u8 = 0x07;
    pub const CH_CNF: u8 = 0x08;
    pub const CH_CFG: u8 = 0x09;
    pub const CH_ACK: u8 = 0x0a;
    pub const CH_REJ: u8 = 0x0b;
    pub const QUORUM_CLT: u8 = 0x0c;
    pub const QUORUM_CFM: u8 = 0x0d;
    pub const QUORUM_COMMIT: u8 = 0x0e;
    pub const REPLICA_PUSH: u8 = 0x0f;
    pub const UPDATE_LOC: u8 = 0x10;
    pub const RETURN_ADDR: u8 = 0x11;
    pub const RETURN_ADDR_ACK: u8 = 0x12;
    pub const RETURN_BLOCK: u8 = 0x13;
    pub const RETURN_BLOCK_ACK: u8 = 0x14;
    pub const RESIGN: u8 = 0x15;
    pub const ALLOCATOR_CHANGE: u8 = 0x16;
    pub const ADDR_REC: u8 = 0x17;
    pub const REC_REP: u8 = 0x18;
    pub const REP_REQ: u8 = 0x19;
    pub const REP_ACK: u8 = 0x1a;
    pub const COM_REQ_FWD: u8 = 0x1b;
    pub const REINIT: u8 = 0x1c;
    pub const OWN_CLAIM: u8 = 0x1d;
    pub const OWN_GRANT: u8 = 0x1e;

    pub const OP_CHECK: u8 = 0x01;
    pub const OP_SPLIT: u8 = 0x02;
    pub const OP_CLAIM: u8 = 0x03;

    pub const ST_FREE: u8 = 0x00;
    pub const ST_ALLOC: u8 = 0x01;
    pub const ST_VACANT: u8 = 0x02;
}

/// Encodes a message into a fresh buffer.
#[must_use]
pub fn encode(msg: &Msg) -> Bytes {
    let mut b = BytesMut::with_capacity(16);
    put_msg(&mut b, msg);
    b.freeze()
}

/// Encoded size in bytes, without materializing twice.
#[must_use]
pub fn encoded_len(msg: &Msg) -> usize {
    encode(msg).len()
}

/// Decodes a message from a buffer.
///
/// # Errors
///
/// Returns [`WireError`] on truncated input or unknown tags.
pub fn decode(buf: &[u8]) -> Result<Msg, WireError> {
    let mut cur = buf;
    let msg = take_msg(&mut cur)?;
    Ok(msg)
}

/// Transcripts canonicalize QBAC messages as their wire encoding, so
/// transcript equality across backends also proves the codec round-trips
/// (the mesh records what it decoded off the socket; the simulator
/// records what it encoded).
impl proto_io::ProtoMsg for Msg {
    fn canon(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&encode(self));
    }
}

impl proto_io::WireMsg for Msg {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&encode(self));
    }

    fn wire_decode(bytes: &[u8]) -> Result<Self, String> {
        decode(bytes).map_err(|e| e.to_string())
    }
}

fn put_msg(b: &mut BytesMut, msg: &Msg) {
    match msg {
        Msg::Hello {
            sender_ip,
            is_head,
            network_id,
        } => {
            b.put_u8(tags::HELLO);
            put_opt_addr(b, *sender_ip);
            b.put_u8(u8::from(*is_head));
            put_opt_addr(b, *network_id);
        }
        Msg::ComReq => b.put_u8(tags::COM_REQ),
        Msg::ComReqFwd { requestor } => {
            b.put_u8(tags::COM_REQ_FWD);
            put_node(b, *requestor);
        }
        Msg::ComCfg {
            ip,
            configurer,
            network_id,
            spent_hops,
            auth,
        } => {
            b.put_u8(tags::COM_CFG);
            put_addr(b, *ip);
            put_addr(b, *configurer);
            put_addr(b, *network_id);
            b.put_u32(*spent_hops);
            b.put_u64(*auth);
        }
        Msg::ComAck => b.put_u8(tags::COM_ACK),
        Msg::ComRej => b.put_u8(tags::COM_REJ),
        Msg::ChReq => b.put_u8(tags::CH_REQ),
        Msg::ChPrp { available } => {
            b.put_u8(tags::CH_PRP);
            b.put_u64(*available);
        }
        Msg::ChCnf => b.put_u8(tags::CH_CNF),
        Msg::ChCfg {
            block,
            ip,
            configurer,
            network_id,
            spent_hops,
            records,
        } => {
            b.put_u8(tags::CH_CFG);
            put_block(b, *block);
            put_addr(b, *ip);
            put_addr(b, *configurer);
            put_addr(b, *network_id);
            b.put_u32(*spent_hops);
            b.put_u32(records.len() as u32);
            for (a, r) in records {
                put_addr(b, *a);
                put_record(b, *r);
            }
        }
        Msg::ChAck => b.put_u8(tags::CH_ACK),
        Msg::ChRej => b.put_u8(tags::CH_REJ),
        Msg::QuorumClt { seq, op } => {
            b.put_u8(tags::QUORUM_CLT);
            b.put_u64(*seq);
            match op {
                QuorumOp::CheckAddr { owner, addr } => {
                    b.put_u8(tags::OP_CHECK);
                    put_node(b, *owner);
                    put_addr(b, *addr);
                }
                QuorumOp::SplitBlock { owner } => {
                    b.put_u8(tags::OP_SPLIT);
                    put_node(b, *owner);
                }
                QuorumOp::ClaimBlocks {
                    claimant,
                    rival,
                    blocks,
                } => {
                    b.put_u8(tags::OP_CLAIM);
                    put_node(b, *claimant);
                    put_node(b, *rival);
                    b.put_u16(blocks.len() as u16);
                    for blk in blocks {
                        put_block(b, *blk);
                    }
                }
            }
        }
        Msg::QuorumCfm {
            seq,
            grant,
            stamp,
            auth,
        } => {
            b.put_u8(tags::QUORUM_CFM);
            b.put_u64(*seq);
            b.put_u8(u8::from(*grant));
            b.put_u64(stamp.get());
            b.put_u64(*auth);
        }
        Msg::QuorumCommit {
            owner,
            addr,
            record,
            auth,
        } => {
            b.put_u8(tags::QUORUM_COMMIT);
            put_node(b, *owner);
            put_addr(b, *addr);
            put_record(b, *record);
            b.put_u64(*auth);
        }
        Msg::ReplicaPush {
            owner,
            owner_ip,
            blocks,
            table,
            reply_requested,
        } => {
            b.put_u8(tags::REPLICA_PUSH);
            put_node(b, *owner);
            put_addr(b, *owner_ip);
            b.put_u16(blocks.len() as u16);
            for blk in blocks {
                put_block(b, *blk);
            }
            put_table(b, table);
            b.put_u8(u8::from(*reply_requested));
        }
        Msg::UpdateLoc { configurer, ip } => {
            b.put_u8(tags::UPDATE_LOC);
            put_addr(b, *configurer);
            put_addr(b, *ip);
        }
        Msg::ReturnAddr { configurer, ip } => {
            b.put_u8(tags::RETURN_ADDR);
            put_addr(b, *configurer);
            put_addr(b, *ip);
        }
        Msg::ReturnAddrAck => b.put_u8(tags::RETURN_ADDR_ACK),
        Msg::ReturnBlock {
            blocks,
            table,
            ip,
            members,
        } => {
            b.put_u8(tags::RETURN_BLOCK);
            b.put_u16(blocks.len() as u16);
            for blk in blocks {
                put_block(b, *blk);
            }
            put_table(b, table);
            put_addr(b, *ip);
            b.put_u32(members.len() as u32);
            for (a, n) in members {
                put_addr(b, *a);
                put_node(b, *n);
            }
        }
        Msg::ReturnBlockAck => b.put_u8(tags::RETURN_BLOCK_ACK),
        Msg::Resign => b.put_u8(tags::RESIGN),
        Msg::AllocatorChange { new_configurer } => {
            b.put_u8(tags::ALLOCATOR_CHANGE);
            put_addr(b, *new_configurer);
        }
        Msg::AddrRec {
            target,
            target_ip,
            initiator,
            initiator_ip,
            auth,
        } => {
            b.put_u8(tags::ADDR_REC);
            put_node(b, *target);
            put_addr(b, *target_ip);
            put_node(b, *initiator);
            put_addr(b, *initiator_ip);
            b.put_u64(*auth);
        }
        Msg::RecRep {
            target_ip,
            ip,
            node,
            target,
        } => {
            b.put_u8(tags::REC_REP);
            put_addr(b, *target_ip);
            put_addr(b, *ip);
            put_node(b, *node);
            put_node(b, *target);
        }
        Msg::RepReq => b.put_u8(tags::REP_REQ),
        Msg::RepAck => b.put_u8(tags::REP_ACK),
        Msg::Reinit { network_id, force } => {
            b.put_u8(tags::REINIT);
            put_addr(b, *network_id);
            b.put_u8(u8::from(*force));
        }
        Msg::OwnClaim {
            claimant_ip,
            blocks,
            claim_stamp,
            auth,
        } => {
            b.put_u8(tags::OWN_CLAIM);
            put_addr(b, *claimant_ip);
            b.put_u16(blocks.len() as u16);
            for blk in blocks {
                put_block(b, *blk);
            }
            b.put_u64(*claim_stamp);
            b.put_u64(*auth);
        }
        Msg::OwnGrant { blocks, records } => {
            b.put_u8(tags::OWN_GRANT);
            b.put_u16(blocks.len() as u16);
            for blk in blocks {
                put_block(b, *blk);
            }
            b.put_u32(records.len() as u32);
            for (a, r) in records {
                put_addr(b, *a);
                put_record(b, *r);
            }
        }
    }
}

fn take_msg(cur: &mut &[u8]) -> Result<Msg, WireError> {
    let tag = take_u8(cur)?;
    Ok(match tag {
        tags::HELLO => Msg::Hello {
            sender_ip: take_opt_addr(cur)?,
            is_head: take_u8(cur)? != 0,
            network_id: take_opt_addr(cur)?,
        },
        tags::COM_REQ => Msg::ComReq,
        tags::COM_REQ_FWD => Msg::ComReqFwd {
            requestor: take_node(cur)?,
        },
        tags::COM_CFG => Msg::ComCfg {
            ip: take_addr(cur)?,
            configurer: take_addr(cur)?,
            network_id: take_addr(cur)?,
            spent_hops: take_u32(cur)?,
            auth: take_u64(cur)?,
        },
        tags::COM_ACK => Msg::ComAck,
        tags::COM_REJ => Msg::ComRej,
        tags::CH_REQ => Msg::ChReq,
        tags::CH_PRP => Msg::ChPrp {
            available: take_u64(cur)?,
        },
        tags::CH_CNF => Msg::ChCnf,
        tags::CH_CFG => {
            let block = take_block(cur)?;
            let ip = take_addr(cur)?;
            let configurer = take_addr(cur)?;
            let network_id = take_addr(cur)?;
            let spent_hops = take_u32(cur)?;
            let n = take_u32(cur)?;
            let mut records = Vec::with_capacity((n as usize).min(1024));
            for _ in 0..n {
                records.push((take_addr(cur)?, take_record(cur)?));
            }
            Msg::ChCfg {
                block,
                ip,
                configurer,
                network_id,
                spent_hops,
                records,
            }
        }
        tags::CH_ACK => Msg::ChAck,
        tags::CH_REJ => Msg::ChRej,
        tags::QUORUM_CLT => {
            let seq = take_u64(cur)?;
            let op = match take_u8(cur)? {
                tags::OP_CHECK => QuorumOp::CheckAddr {
                    owner: take_node(cur)?,
                    addr: take_addr(cur)?,
                },
                tags::OP_SPLIT => QuorumOp::SplitBlock {
                    owner: take_node(cur)?,
                },
                tags::OP_CLAIM => {
                    let claimant = take_node(cur)?;
                    let rival = take_node(cur)?;
                    let n = take_u16(cur)?;
                    let mut blocks = Vec::with_capacity(usize::from(n).min(1024));
                    for _ in 0..n {
                        blocks.push(take_block(cur)?);
                    }
                    QuorumOp::ClaimBlocks {
                        claimant,
                        rival,
                        blocks,
                    }
                }
                t => return Err(WireError::BadTag(t)),
            };
            Msg::QuorumClt { seq, op }
        }
        tags::QUORUM_CFM => Msg::QuorumCfm {
            seq: take_u64(cur)?,
            grant: take_u8(cur)? != 0,
            stamp: VersionStamp::new(take_u64(cur)?),
            auth: take_u64(cur)?,
        },
        tags::QUORUM_COMMIT => Msg::QuorumCommit {
            owner: take_node(cur)?,
            addr: take_addr(cur)?,
            record: take_record(cur)?,
            auth: take_u64(cur)?,
        },
        tags::REPLICA_PUSH => {
            let owner = take_node(cur)?;
            let owner_ip = take_addr(cur)?;
            let n = take_u16(cur)?;
            let mut blocks = Vec::with_capacity(usize::from(n).min(1024));
            for _ in 0..n {
                blocks.push(take_block(cur)?);
            }
            let table = take_table(cur)?;
            let reply_requested = take_u8(cur)? != 0;
            Msg::ReplicaPush {
                owner,
                owner_ip,
                blocks,
                table,
                reply_requested,
            }
        }
        tags::UPDATE_LOC => Msg::UpdateLoc {
            configurer: take_addr(cur)?,
            ip: take_addr(cur)?,
        },
        tags::RETURN_ADDR => Msg::ReturnAddr {
            configurer: take_addr(cur)?,
            ip: take_addr(cur)?,
        },
        tags::RETURN_ADDR_ACK => Msg::ReturnAddrAck,
        tags::RETURN_BLOCK => {
            let n = take_u16(cur)?;
            let mut blocks = Vec::with_capacity(usize::from(n).min(1024));
            for _ in 0..n {
                blocks.push(take_block(cur)?);
            }
            let table = take_table(cur)?;
            let ip = take_addr(cur)?;
            let m = take_u32(cur)?;
            let mut members = Vec::with_capacity((m as usize).min(1024));
            for _ in 0..m {
                members.push((take_addr(cur)?, take_node(cur)?));
            }
            Msg::ReturnBlock {
                blocks,
                table,
                ip,
                members,
            }
        }
        tags::RETURN_BLOCK_ACK => Msg::ReturnBlockAck,
        tags::RESIGN => Msg::Resign,
        tags::ALLOCATOR_CHANGE => Msg::AllocatorChange {
            new_configurer: take_addr(cur)?,
        },
        tags::ADDR_REC => Msg::AddrRec {
            target: take_node(cur)?,
            target_ip: take_addr(cur)?,
            initiator: take_node(cur)?,
            initiator_ip: take_addr(cur)?,
            auth: take_u64(cur)?,
        },
        tags::REC_REP => Msg::RecRep {
            target_ip: take_addr(cur)?,
            ip: take_addr(cur)?,
            node: take_node(cur)?,
            target: take_node(cur)?,
        },
        tags::REP_REQ => Msg::RepReq,
        tags::REP_ACK => Msg::RepAck,
        tags::REINIT => Msg::Reinit {
            network_id: take_addr(cur)?,
            force: take_u8(cur)? != 0,
        },
        tags::OWN_CLAIM => {
            let claimant_ip = take_addr(cur)?;
            let n = take_u16(cur)?;
            let mut blocks = Vec::with_capacity(usize::from(n).min(1024));
            for _ in 0..n {
                blocks.push(take_block(cur)?);
            }
            let claim_stamp = take_u64(cur)?;
            let auth = take_u64(cur)?;
            Msg::OwnClaim {
                claimant_ip,
                blocks,
                claim_stamp,
                auth,
            }
        }
        tags::OWN_GRANT => {
            let n = take_u16(cur)?;
            let mut blocks = Vec::with_capacity(usize::from(n).min(1024));
            for _ in 0..n {
                blocks.push(take_block(cur)?);
            }
            let m = take_u32(cur)?;
            let mut records = Vec::with_capacity((m as usize).min(1024));
            for _ in 0..m {
                records.push((take_addr(cur)?, take_record(cur)?));
            }
            Msg::OwnGrant { blocks, records }
        }
        t => return Err(WireError::BadTag(t)),
    })
}

// ---------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------

fn put_addr(b: &mut BytesMut, a: Addr) {
    b.put_u32(a.bits());
}

fn put_opt_addr(b: &mut BytesMut, a: Option<Addr>) {
    match a {
        Some(a) => {
            b.put_u8(1);
            put_addr(b, a);
        }
        None => b.put_u8(0),
    }
}

fn put_node(b: &mut BytesMut, n: NodeId) {
    b.put_u64(n.index());
}

fn put_block(b: &mut BytesMut, blk: AddrBlock) {
    put_addr(b, blk.base());
    b.put_u32(blk.len());
}

fn put_record(b: &mut BytesMut, r: AddrRecord) {
    match r.status {
        AddrStatus::Free => b.put_u8(tags::ST_FREE),
        AddrStatus::Allocated(owner) => {
            b.put_u8(tags::ST_ALLOC);
            b.put_u64(owner);
        }
        AddrStatus::Vacant => b.put_u8(tags::ST_VACANT),
    }
    b.put_u64(r.stamp.get());
}

fn put_table(b: &mut BytesMut, t: &AllocationTable) {
    b.put_u32(t.len() as u32);
    for (addr, rec) in t.iter() {
        put_addr(b, addr);
        put_record(b, rec);
    }
}

fn take_u8(cur: &mut &[u8]) -> Result<u8, WireError> {
    if cur.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    Ok(cur.get_u8())
}

fn take_u16(cur: &mut &[u8]) -> Result<u16, WireError> {
    if cur.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    Ok(cur.get_u16())
}

fn take_u32(cur: &mut &[u8]) -> Result<u32, WireError> {
    if cur.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(cur.get_u32())
}

fn take_u64(cur: &mut &[u8]) -> Result<u64, WireError> {
    if cur.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(cur.get_u64())
}

fn take_addr(cur: &mut &[u8]) -> Result<Addr, WireError> {
    Ok(Addr::new(take_u32(cur)?))
}

fn take_opt_addr(cur: &mut &[u8]) -> Result<Option<Addr>, WireError> {
    match take_u8(cur)? {
        0 => Ok(None),
        _ => Ok(Some(take_addr(cur)?)),
    }
}

fn take_node(cur: &mut &[u8]) -> Result<NodeId, WireError> {
    Ok(NodeId::new(take_u64(cur)?))
}

fn take_block(cur: &mut &[u8]) -> Result<AddrBlock, WireError> {
    let base = take_addr(cur)?;
    let len = take_u32(cur)?;
    AddrBlock::new(base, len).map_err(|_| WireError::BadBlock)
}

fn take_record(cur: &mut &[u8]) -> Result<AddrRecord, WireError> {
    let status = match take_u8(cur)? {
        tags::ST_FREE => AddrStatus::Free,
        tags::ST_ALLOC => AddrStatus::Allocated(take_u64(cur)?),
        tags::ST_VACANT => AddrStatus::Vacant,
        t => return Err(WireError::BadTag(t)),
    };
    let stamp = VersionStamp::new(take_u64(cur)?);
    Ok(AddrRecord { status, stamp })
}

fn take_table(cur: &mut &[u8]) -> Result<AllocationTable, WireError> {
    let n = take_u32(cur)?;
    // The count is attacker-controlled: cap the pre-allocation; a lying
    // count runs out of buffer long before the cap matters.
    let mut entries = Vec::with_capacity((n as usize).min(1024));
    for _ in 0..n {
        let addr = take_addr(cur)?;
        let rec = take_record(cur)?;
        entries.push((addr, rec));
    }
    Ok(entries.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Msg> {
        let mut table = AllocationTable::new();
        table.set(Addr::new(5), AddrStatus::Allocated(7));
        table.set(Addr::new(6), AddrStatus::Vacant);
        vec![
            Msg::Hello {
                sender_ip: Some(Addr::new(9)),
                is_head: true,
                network_id: None,
            },
            Msg::ComReq,
            Msg::ComReqFwd {
                requestor: NodeId::new(3),
            },
            Msg::ComCfg {
                ip: Addr::new(1),
                configurer: Addr::new(2),
                network_id: Addr::new(0),
                spent_hops: 12,
                auth: 0xdead_beef,
            },
            Msg::ComAck,
            Msg::ComRej,
            Msg::ChReq,
            Msg::ChPrp { available: 99 },
            Msg::ChCnf,
            Msg::ChCfg {
                block: AddrBlock::new(Addr::new(16), 16).unwrap(),
                ip: Addr::new(16),
                configurer: Addr::new(0),
                network_id: Addr::new(0),
                spent_hops: 4,
                records: vec![(
                    Addr::new(20),
                    AddrRecord {
                        status: AddrStatus::Allocated(9),
                        stamp: VersionStamp::new(1),
                    },
                )],
            },
            Msg::ChAck,
            Msg::ChRej,
            Msg::QuorumClt {
                seq: 42,
                op: QuorumOp::CheckAddr {
                    owner: NodeId::new(1),
                    addr: Addr::new(8),
                },
            },
            Msg::QuorumClt {
                seq: 43,
                op: QuorumOp::SplitBlock {
                    owner: NodeId::new(2),
                },
            },
            Msg::QuorumCfm {
                seq: 42,
                grant: true,
                stamp: VersionStamp::new(5),
                auth: 7,
            },
            Msg::QuorumCommit {
                owner: NodeId::new(1),
                addr: Addr::new(8),
                record: AddrRecord {
                    status: AddrStatus::Allocated(33),
                    stamp: VersionStamp::new(2),
                },
                auth: 0x0bad_c0de,
            },
            Msg::ReplicaPush {
                owner: NodeId::new(4),
                owner_ip: Addr::new(32),
                blocks: vec![AddrBlock::new(Addr::new(32), 8).unwrap()],
                table: table.clone(),
                reply_requested: true,
            },
            Msg::UpdateLoc {
                configurer: Addr::new(0),
                ip: Addr::new(3),
            },
            Msg::ReturnAddr {
                configurer: Addr::new(0),
                ip: Addr::new(3),
            },
            Msg::ReturnAddrAck,
            Msg::ReturnBlock {
                blocks: vec![AddrBlock::new(Addr::new(64), 64).unwrap()],
                table,
                ip: Addr::new(64),
                members: vec![(Addr::new(65), NodeId::new(9))],
            },
            Msg::ReturnBlockAck,
            Msg::Resign,
            Msg::AllocatorChange {
                new_configurer: Addr::new(11),
            },
            Msg::AddrRec {
                target: NodeId::new(5),
                target_ip: Addr::new(50),
                initiator: NodeId::new(6),
                initiator_ip: Addr::new(60),
                auth: u64::MAX,
            },
            Msg::RecRep {
                target_ip: Addr::new(50),
                ip: Addr::new(51),
                node: NodeId::new(7),
                target: NodeId::new(5),
            },
            Msg::RepReq,
            Msg::RepAck,
            Msg::Reinit {
                network_id: Addr::new(77),
                force: true,
            },
            Msg::QuorumClt {
                seq: 44,
                op: QuorumOp::ClaimBlocks {
                    claimant: NodeId::new(1),
                    rival: NodeId::new(2),
                    blocks: vec![AddrBlock::new(Addr::new(128), 64).unwrap()],
                },
            },
            Msg::OwnClaim {
                claimant_ip: Addr::new(7),
                blocks: vec![AddrBlock::new(Addr::new(128), 64).unwrap()],
                claim_stamp: 3,
                auth: 0x1234_5678,
            },
            Msg::OwnGrant {
                blocks: vec![AddrBlock::new(Addr::new(128), 64).unwrap()],
                records: vec![(
                    Addr::new(130),
                    AddrRecord {
                        status: AddrStatus::Allocated(12),
                        stamp: VersionStamp::new(3),
                    },
                )],
            },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in samples() {
            let bytes = encode(&msg);
            let back = decode(&bytes).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn control_messages_are_tiny() {
        assert_eq!(encoded_len(&Msg::ComReq), 1);
        assert_eq!(encoded_len(&Msg::RepReq), 1);
        assert!(
            encoded_len(&Msg::ComCfg {
                ip: Addr::new(1),
                configurer: Addr::new(2),
                network_id: Addr::new(0),
                spent_hops: 0,
                auth: 0,
            }) <= 28
        );
    }

    #[test]
    fn truncation_is_detected() {
        for msg in samples() {
            let bytes = encode(&msg);
            if bytes.len() > 1 {
                let cut = &bytes[..bytes.len() - 1];
                assert_eq!(
                    decode(cut).unwrap_err(),
                    WireError::Truncated,
                    "cutting {msg:?} must be detected"
                );
            }
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode(&[0xff]).unwrap_err(), WireError::BadTag(0xff));
        assert_eq!(decode(&[]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn replica_push_size_scales_with_table() {
        let small = Msg::ReplicaPush {
            owner: NodeId::new(1),
            owner_ip: Addr::new(0),
            blocks: vec![],
            table: AllocationTable::new(),
            reply_requested: false,
        };
        let mut table = AllocationTable::new();
        for i in 0..100 {
            table.set(Addr::new(i), AddrStatus::Allocated(u64::from(i)));
        }
        let big = Msg::ReplicaPush {
            owner: NodeId::new(1),
            owner_ip: Addr::new(0),
            blocks: vec![],
            table,
            reply_requested: false,
        };
        assert!(encoded_len(&big) > encoded_len(&small) + 100 * 10);
    }
}
