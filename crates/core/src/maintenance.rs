//! Node movement and departure (§IV-C) plus the hello beaconing that
//! drives neighbor discovery, quorum growth, and partition detection.

use crate::msg::Msg;
use crate::protocol::{tag, Qbac};
use crate::roles::NodeRole;
use addrspace::{Addr, AddrStatus};
use proto_io::{FlowKind, FlowStage, MsgCategory, Net, NodeId};

impl Qbac {
    // ------------------------------------------------------------------
    // Hello beaconing
    // ------------------------------------------------------------------

    /// Periodic hello: beacon to one-hop neighbors, and for heads run the
    /// neighborhood scan that grows the quorum set when new heads appear
    /// (§V-B: "quorum sets are updated whenever a new cluster head enters
    /// the neighborhood").
    pub(crate) fn on_hello_timer(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let Some(role) = self.roles.get(&node) else {
            return;
        };
        if !role.is_configured() {
            return; // stop beaconing; restarts when reconfigured
        }
        let msg = Msg::Hello {
            sender_ip: role.ip(),
            is_head: role.is_head(),
            network_id: role.network_id(),
        };
        let _ = w.broadcast_within(node, 1, MsgCategory::Hello, msg);

        if role.is_head() {
            self.grow_quorum(w, node);
            // Reconciliation retry point: a conflict whose claim lapsed
            // (failed vote, lost OWN_CLAIM) is re-detected here.
            self.check_ownership_conflicts(w, node);
        }

        let interval = self.cfg.hello_interval;
        w.set_timer(node, interval, tag::mk(tag::HELLO, 0));
    }

    /// Adds newly adjacent heads (within three hops, same network) to the
    /// `QDSet`, exchanging replicas with them. Prioritized when the
    /// replication floor `|QDSet| < min_qdset` is violated, but newcomers
    /// are always adopted.
    pub(crate) fn grow_quorum(&mut self, w: &mut Net<'_, Msg>, head: NodeId) {
        let Some(state) = self.head_state(head) else {
            return;
        };
        let network = state.network_id;
        // A qd_set member with no replica in hand means our push (or its
        // reply) was lost in flight — a partition can swallow the
        // handshake right after the member was added. Keep re-sending to
        // those members; only a completed exchange settles the entry.
        let known: Vec<NodeId> = state
            .qd_set
            .keys()
            .filter(|n| state.quorum_space.contains_key(n))
            .copied()
            .collect();
        let candidates: Vec<NodeId> = self
            .heads_within(w, head, 3, Some(network))
            .into_iter()
            .map(|(n, _)| n)
            .filter(|n| !known.contains(n) && *n != head)
            .collect();
        if candidates.is_empty() {
            return;
        }
        for cand in candidates {
            let Some(cand_ip) = self.head_state(cand).map(|s| s.ip) else {
                continue;
            };
            let Some(state) = self.head_state_mut(head) else {
                return;
            };
            state.qd_set.insert(cand, cand_ip);
            let msg = Msg::ReplicaPush {
                owner: head,
                owner_ip: state.ip,
                blocks: state.pool.blocks().to_vec(),
                table: state.pool.table().clone(),
                reply_requested: true,
            };
            let _ = w.unicast(head, cand, MsgCategory::Maintenance, msg);
        }
    }

    /// A hello arrived: partition detection (§V-C), plus passive repair
    /// of reclamation races (in the spirit of the passive-DAD work the
    /// paper surveys): a head that hears a hello carrying an address it
    /// owns checks its record — a vacant record means the reclamation
    /// wrongly presumed the holder dead (restore it); a record naming a
    /// different holder means a real duplicate (the hello sender lost
    /// the race and must reconfigure).
    pub(crate) fn on_hello(
        &mut self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        from: NodeId,
        sender_ip: Option<Addr>,
        is_head: bool,
        their_network: Option<Addr>,
    ) {
        let Some(theirs) = their_network else {
            return;
        };
        let Some(role) = self.roles.get(&node) else {
            return;
        };
        let Some(mine) = role.network_id() else {
            return;
        };
        if mine > theirs {
            self.rejoin_network(w, node, theirs);
            return;
        }
        if mine != theirs || is_head {
            return;
        }
        // Same network, sender is a common node: audit its address
        // against our pool if we own it.
        let (Some(sender_ip), true) = (sender_ip, role.is_head()) else {
            return;
        };
        let Some(state) = self.head_state_mut(node) else {
            return;
        };
        if !state.pool.owns(sender_ip) {
            return;
        }
        match state.pool.table().status(sender_ip) {
            AddrStatus::Allocated(holder) if holder == from.index() => {}
            AddrStatus::Allocated(_) => {
                // A different node holds the record: the hello sender is
                // the surviving twin of a reclamation race — it must
                // reacquire an address.
                let _ = w.unicast(
                    node,
                    from,
                    MsgCategory::Maintenance,
                    Msg::Reinit {
                        network_id: mine,
                        force: true,
                    },
                );
            }
            AddrStatus::Free | AddrStatus::Vacant => {
                // We presumed the holder dead; it seems alive. A hello
                // can also arrive moments after its sender departed
                // (stale in flight), so confirm liveness before
                // restoring — this stands in for the probe a deployment
                // would fire.
                if !w.is_alive(from) {
                    return;
                }
                state
                    .pool
                    .table_mut()
                    .set(sender_ip, AddrStatus::Allocated(from.index()));
                state.members.insert(sender_ip, from);
                let record = state.pool.table().record(sender_ip);
                let grants: std::collections::BTreeSet<NodeId> =
                    state.electorate().into_iter().collect();
                self.commit_to_quorum2(w, node, node, sender_ip, record, &grants);
            }
        }
    }

    /// Drops the node's current configuration and re-enters the protocol
    /// targeting `network` (merge or re-init).
    pub(crate) fn rejoin_network(&mut self, w: &mut Net<'_, Msg>, node: NodeId, network: Addr) {
        self.stats.merges += 1;
        w.flow_event(FlowKind::Merge, node, FlowStage::Started);
        let js = crate::roles::JoinState {
            target_network: Some(network),
            ..Default::default()
        };
        self.roles.insert(node, NodeRole::Unconfigured(js));
        self.attempt_join(w, node);
    }

    // ------------------------------------------------------------------
    // Location updates (§IV-C.1)
    // ------------------------------------------------------------------

    /// Periodic check: a common node more than three hops from both its
    /// configurer and its administrator reports to the nearest head.
    pub(crate) fn on_loc_check(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let Some(NodeRole::Common(c)) = self.roles.get(&node) else {
            return;
        };
        let configurer = c.configurer;
        let administrator = c.administrator;
        let (ip, configurer_ip, network) = (c.ip, c.configurer_ip, c.network_id);

        let near_configurer = w.hops_between(node, configurer).is_some_and(|h| h <= 3);
        let near_admin =
            administrator.is_some_and(|a| w.hops_between(node, a).is_some_and(|h| h <= 3));

        if !near_configurer && !near_admin {
            if let Some((nearest, _)) = self.nearest_head(w, node, Some(network)) {
                if nearest != configurer {
                    let _ = w.unicast(
                        node,
                        nearest,
                        MsgCategory::Maintenance,
                        Msg::UpdateLoc {
                            configurer: configurer_ip,
                            ip,
                        },
                    );
                    if let Some(NodeRole::Common(c)) = self.roles.get_mut(&node) {
                        c.administrator = Some(nearest);
                    }
                }
            }
        }

        let interval = self.cfg.loc_update_interval;
        w.set_timer(node, interval, tag::mk(tag::LOC_CHECK, 0));
    }

    /// A head records an `UPDATE_LOC` (it is now the node's
    /// administrator). The head keeps no extra state beyond what routing
    /// already provides; the message cost is the measured quantity.
    pub(crate) fn on_update_loc(
        &mut self,
        _w: &mut Net<'_, Msg>,
        _head: NodeId,
        _from: NodeId,
        _configurer: Addr,
        _ip: Addr,
    ) {
    }

    // ------------------------------------------------------------------
    // Departure (§IV-C)
    // ------------------------------------------------------------------

    /// Graceful departure entry point.
    pub(crate) fn graceful_leave(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        match self.roles.get(&node) {
            None | Some(NodeRole::Unconfigured(_)) => {
                w.remove_node(node);
            }
            Some(NodeRole::Common(c)) => {
                let (ip, configurer_ip, network) = (c.ip, c.configurer_ip, c.network_id);
                // Return the address via the nearest head (§IV-C.1).
                if let Some((nearest, _)) = self.nearest_head(w, node, Some(network)) {
                    if w.unicast(
                        node,
                        nearest,
                        MsgCategory::Maintenance,
                        Msg::ReturnAddr {
                            configurer: configurer_ip,
                            ip,
                        },
                    )
                    .is_ok()
                    {
                        // Leave once acknowledged; a safety timer prevents
                        // an immortal node if the head dies first.
                        let safety = self.cfg.tr;
                        w.set_timer(node, safety, tag::mk(tag::DEPART_TIMEOUT, 0));
                        return;
                    }
                }
                w.remove_node(node);
            }
            Some(NodeRole::Head(_)) => self.head_graceful_leave(w, node),
        }
    }

    /// A departing cluster head returns its block (§IV-C.2): to its
    /// configurer if within three hops, otherwise to the `QDSet` member
    /// with the smallest block.
    fn head_graceful_leave(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let Some(state) = self.head_state(node) else {
            w.remove_node(node);
            return;
        };
        let configurer = state
            .configurer
            .filter(|c| w.is_alive(*c) && w.hops_between(node, *c).is_some_and(|h| h <= 3));
        let successor = configurer.or_else(|| {
            // Smallest replicated space among alive QDSet members.
            self.head_state(node).and_then(|s| {
                s.qd_set
                    .keys()
                    .filter(|m| w.is_alive(**m))
                    .min_by_key(|m| {
                        s.quorum_space
                            .get(m)
                            .map_or(u64::MAX, |rep| rep.space_len())
                    })
                    .copied()
            })
        });

        let Some(state) = self.head_state(node) else {
            return;
        };
        let qd: Vec<NodeId> = state.qd_set.keys().copied().collect();
        let Some(succ) = successor else {
            // Lone head: nobody can absorb the space.
            w.remove_node(node);
            return;
        };

        let msg = Msg::ReturnBlock {
            blocks: state.pool.blocks().to_vec(),
            table: state.pool.table().clone(),
            ip: state.ip,
            members: state.members.iter().map(|(a, n)| (*a, *n)).collect(),
        };
        if w.unicast(node, succ, MsgCategory::Maintenance, msg)
            .is_err()
        {
            w.remove_node(node);
            return;
        }
        // Resign from every QDSet that lists us (§IV-C.2).
        for m in qd {
            if m != succ {
                let _ = w.unicast(node, m, MsgCategory::Maintenance, Msg::Resign);
            }
        }
        let safety = self.cfg.tr;
        w.set_timer(node, safety, tag::mk(tag::DEPART_TIMEOUT, 0));
    }

    /// The departure safety timer fired before the ack arrived: leave
    /// anyway (the address may leak; reclamation will recover it).
    pub(crate) fn on_depart_timeout(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        w.remove_node(node);
    }

    /// A head receives a returned address (§IV-C.1).
    pub(crate) fn on_return_addr(
        &mut self,
        w: &mut Net<'_, Msg>,
        head: NodeId,
        from: NodeId,
        configurer_ip: Addr,
        ip: Addr,
    ) {
        // Acknowledge first so the departing node can leave.
        let _ = w.unicast(head, from, MsgCategory::Maintenance, Msg::ReturnAddrAck);

        let Some(state) = self.head_state(head) else {
            return;
        };

        if state.pool.owns(ip) {
            // We are the allocator: vacate and tell the quorum.
            let Some(state) = self.head_state_mut(head) else {
                return;
            };
            if state.pool.release(ip).is_ok() {
                state.members.remove(&ip);
                let record = state.pool.table().record(ip);
                let grants: std::collections::BTreeSet<NodeId> =
                    state.electorate().into_iter().collect();
                self.commit_to_quorum2(w, head, head, ip, record, &grants);
            }
            return;
        }

        // Route to the allocator if it is still around.
        if let Some(allocator) = self.head_by_ip(configurer_ip).filter(|a| w.is_alive(*a)) {
            if allocator != head {
                let _ = w.unicast(
                    head,
                    allocator,
                    MsgCategory::Maintenance,
                    Msg::ReturnAddr {
                        configurer: configurer_ip,
                        ip,
                    },
                );
                return;
            }
        }

        // The allocator is gone but we may hold a replica of the space
        // (we are "a cluster head E which belongs to the QDSet of the
        // configurer", §IV-C.1).
        let owner = state
            .quorum_space
            .iter()
            .find_map(|(o, rep)| rep.blocks.iter().any(|b| b.contains(ip)).then_some(*o));
        if let Some(owner) = owner {
            let Some(state) = self.head_state_mut(head) else {
                return;
            };
            let Some(rep) = state.quorum_space.get_mut(&owner) else {
                return;
            };
            rep.table.set(ip, AddrStatus::Vacant);
            let record = rep.table.record(ip);
            let grants: std::collections::BTreeSet<NodeId> =
                state.electorate().into_iter().collect();
            self.commit_to_quorum2(w, head, owner, ip, record, &grants);
        }
        // Otherwise the address leaks until reclamation.
    }

    /// Maintenance-category variant of the quorum commit fan-out.
    pub(crate) fn commit_to_quorum2(
        &mut self,
        w: &mut Net<'_, Msg>,
        sender: NodeId,
        owner: NodeId,
        addr: Addr,
        record: addrspace::AddrRecord,
        members: &std::collections::BTreeSet<NodeId>,
    ) -> u32 {
        let auth = crate::auth::quorum_commit_tag(self.cfg.auth_key, owner, addr, record);
        let mut hops = 0;
        for m in members {
            if let Ok(h) = w.unicast(
                sender,
                *m,
                MsgCategory::Maintenance,
                Msg::QuorumCommit {
                    owner,
                    addr,
                    record,
                    auth,
                },
            ) {
                hops += h;
            }
        }
        hops
    }

    /// A successor head absorbs a departing head's space (§IV-C.2).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_return_block(
        &mut self,
        w: &mut Net<'_, Msg>,
        succ: NodeId,
        from: NodeId,
        blocks: Vec<addrspace::AddrBlock>,
        table: addrspace::AllocationTable,
        departed_ip: Addr,
        members: Vec<(Addr, NodeId)>,
    ) {
        let _ = w.unicast(succ, from, MsgCategory::Maintenance, Msg::ReturnBlockAck);
        let Some(state) = self.head_state_mut(succ) else {
            return;
        };
        for b in blocks {
            let _ = state.pool.absorb(b);
        }
        state.pool.table_mut().merge(&table);
        // Version stamps are only comparable within one owner's lineage:
        // a merged foreign record may carry a higher stamp that wrongly
        // frees our own address or a member's. Re-assert them.
        let own_ip = state.ip;
        if state.pool.owns(own_ip) {
            state
                .pool
                .table_mut()
                .set(own_ip, AddrStatus::Allocated(succ.index()));
        }
        let mine: Vec<(Addr, proto_io::NodeId)> =
            state.members.iter().map(|(a, n)| (*a, *n)).collect();
        for (a, n) in mine {
            if state.pool.owns(a) && w.is_alive(n) {
                state
                    .pool
                    .table_mut()
                    .set(a, AddrStatus::Allocated(n.index()));
            }
        }
        // The departing head's own address becomes vacant.
        if state.pool.owns(departed_ip)
            && matches!(
                state.pool.table().status(departed_ip),
                AddrStatus::Allocated(_)
            )
        {
            let _ = state.pool.release(departed_ip);
        }
        state.qd_set.remove(&from);
        state.suspended.remove(&from);
        state.quorum_space.remove(&from);

        // Take over the departed head's members and tell them (§IV-C.2:
        // "inform each node configured by U of the change of their
        // allocator").
        let new_ip = state.ip;
        for (addr, member) in members {
            state.members.insert(addr, member);
        }
        let notify: Vec<NodeId> = self
            .head_state(succ)
            .map(|s| s.members.values().copied().collect())
            .unwrap_or_default();
        for m in notify {
            if let Some(NodeRole::Common(c)) = self.roles.get(&m) {
                if c.configurer == from {
                    let _ = w.unicast(
                        succ,
                        m,
                        MsgCategory::Maintenance,
                        Msg::AllocatorChange {
                            new_configurer: new_ip,
                        },
                    );
                }
            }
        }
        // Replicas must reflect the enlarged space.
        self.push_replica(w, succ, MsgCategory::Maintenance);
    }

    /// A `QDSet` member processes a departing head's resignation.
    pub(crate) fn on_resign(&mut self, _w: &mut Net<'_, Msg>, member: NodeId, departing: NodeId) {
        if let Some(state) = self.head_state_mut(member) {
            state.qd_set.remove(&departing);
            state.suspended.remove(&departing);
            state.quorum_space.remove(&departing);
        }
    }

    /// A common node learns its allocator changed.
    pub(crate) fn on_allocator_change(
        &mut self,
        _w: &mut Net<'_, Msg>,
        node: NodeId,
        from: NodeId,
        new_configurer: Addr,
    ) {
        if let Some(NodeRole::Common(c)) = self.roles.get_mut(&node) {
            c.configurer = from;
            c.configurer_ip = new_configurer;
            c.administrator = None;
        }
    }

    /// Abrupt departure: the node is already dead; nothing is sent.
    /// Detection and recovery happen through quorum adjustment (§V-B) and
    /// reclamation (§IV-D) at the surviving heads.
    pub(crate) fn abrupt_leave(&mut self, _w: &mut Net<'_, Msg>, _node: NodeId) {
        // State intentionally retained: the harness audits what was lost,
        // and surviving heads discover the absence via probes.
    }
}
