use crate::msg::Msg;
use crate::params::{AllocatorChoice, ProtocolConfig};
use crate::roles::{HeadState, JoinState, NodeRole};
use crate::vote::PendingVote;
use addrspace::{Addr, AddressPool};
use proto_io::{FlowKind, FlowStage, MsgCategory, Net, NodeId, ProtocolCore};
use std::collections::HashMap;

/// Timer tag kinds (low byte of the tag; payload in the high bits).
pub(crate) mod tag {
    pub const HELLO: u64 = 1;
    pub const LOC_CHECK: u64 = 2;
    pub const FIRST_RETRY: u64 = 3;
    pub const VOTE_TIMEOUT: u64 = 4;
    pub const REP_TIMEOUT: u64 = 5;
    pub const RECLAIM_FINALIZE: u64 = 6;
    pub const JOIN_RETRY: u64 = 7;
    pub const DEPART_TIMEOUT: u64 = 8;

    pub fn mk(kind: u64, payload: u64) -> u64 {
        kind | (payload << 8)
    }
    pub fn kind(tag: u64) -> u64 {
        tag & 0xff
    }
    pub fn payload(tag: u64) -> u64 {
        tag >> 8
    }
}

/// Aggregate protocol statistics exposed to the harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Nodes configured as common nodes.
    pub common_configured: u64,
    /// Nodes configured as cluster heads.
    pub heads_configured: u64,
    /// Successful address borrows from `QuorumSpace`.
    pub borrows: u64,
    /// Configurations served by agent forwarding (§V-A).
    pub agent_forwards: u64,
    /// Quorum shrinks performed (§V-B).
    pub quorum_shrinks: u64,
    /// Address reclamations initiated (§IV-D).
    pub reclamations: u64,
    /// Network re-initializations by isolated cluster heads (§V-C).
    pub reinits: u64,
    /// Merge-triggered reconfigurations (§V-C).
    pub merges: u64,
    /// Pool-ownership reconciliations completed after a merge (contested
    /// blocks ceded by the tiebreak loser and re-homed by the winner).
    pub ownership_reconciliations: u64,
}

/// The quorum-based IP address autoconfiguration protocol (Xu & Wu,
/// ICDCS 2007).
///
/// One `Qbac` value models the protocol state of every node in the
/// simulated MANET; the [`Protocol`] implementation dispatches simulator
/// events into the flows described in the paper:
///
/// * §IV-B network initialization and address configuration,
/// * §IV-C node movement and departure,
/// * §IV-D address reclamation,
/// * §V-A address borrowing, §V-B quorum adjustment,
/// * §V-C network partition and merging.
///
/// # Example
///
/// ```
/// use manet_sim::{Point, Sim, SimDuration, WorldConfig};
/// use qbac_core::{ProtocolConfig, Qbac};
///
/// let mut sim = Sim::new(WorldConfig::default(), Qbac::new(ProtocolConfig::default()));
/// let first = sim.spawn_at(Point::new(500.0, 500.0));
/// sim.run_for(SimDuration::from_secs(5));
/// assert!(sim.protocol().role(first).unwrap().is_head());
/// ```
#[derive(Debug)]
pub struct Qbac {
    pub(crate) cfg: ProtocolConfig,
    pub(crate) roles: HashMap<NodeId, NodeRole>,
    pub(crate) votes: HashMap<u64, PendingVote>,
    pub(crate) next_seq: u64,
    /// Outstanding liveness probes: prober → probed head.
    pub(crate) probes: HashMap<(NodeId, NodeId), u64>,
    /// Nodes that have completed at least one configuration — merge
    /// reconfigurations do not produce new latency samples.
    pub(crate) configured_once: std::collections::HashSet<NodeId>,
    /// In-flight reclamations at their initiators, keyed by target.
    pub(crate) reclaims: HashMap<NodeId, crate::reclaim::ReclaimState>,
    /// Allocator-side hop spend per (allocator, requestor), accumulated
    /// before the vote starts (CH_PRP etc.).
    pub(crate) alloc_spent: HashMap<(NodeId, NodeId), u32>,
    /// Who is reclaiming each vanished head, learned from `ADDR_REC`
    /// floods — used to forward `REC_REP`s.
    pub(crate) reclaim_initiators: HashMap<NodeId, NodeId>,
    pub(crate) stats: ProtocolStats,
    /// Hardened replay windows: last accepted `OWN_CLAIM` stamp per
    /// `(recipient, claimant_ip)`.
    pub(crate) claim_stamps: HashMap<(NodeId, Addr), u64>,
    /// Hardened rate limiter: `(window start, accepted)` `ADDR_REC`
    /// floods per `(receiver, initiator)`.
    pub(crate) reclaim_accepts: HashMap<(NodeId, NodeId), (proto_io::SimTime, u32)>,
    /// Monotonic counter stamping outgoing `OWN_CLAIM`s. Separate from
    /// `next_seq` so stamping claims never perturbs vote sequencing.
    pub(crate) next_claim_stamp: u64,
    /// State of the fault plan's Byzantine attacker nodes (empty unless
    /// the plan designates attackers).
    pub(crate) adversary: crate::adversary::AdversaryState,
}

impl Qbac {
    /// Creates the protocol with the given parameters.
    #[must_use]
    pub fn new(cfg: ProtocolConfig) -> Self {
        Qbac {
            cfg,
            roles: HashMap::new(),
            votes: HashMap::new(),
            next_seq: 0,
            probes: HashMap::new(),
            configured_once: std::collections::HashSet::new(),
            reclaims: HashMap::new(),
            alloc_spent: HashMap::new(),
            reclaim_initiators: HashMap::new(),
            stats: ProtocolStats::default(),
            claim_stamps: HashMap::new(),
            reclaim_accepts: HashMap::new(),
            next_claim_stamp: 0,
            adversary: crate::adversary::AdversaryState::default(),
        }
    }

    /// The protocol parameters.
    #[must_use]
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> ProtocolStats {
        self.stats
    }

    // ------------------------------------------------------------------
    // Registry helpers
    // ------------------------------------------------------------------

    /// The role of `node`, if it ever joined.
    #[must_use]
    pub fn role(&self, node: NodeId) -> Option<&NodeRole> {
        self.roles.get(&node)
    }

    pub(crate) fn head_state(&self, node: NodeId) -> Option<&HeadState> {
        match self.roles.get(&node) {
            Some(NodeRole::Head(h)) => Some(h),
            _ => None,
        }
    }

    pub(crate) fn head_state_mut(&mut self, node: NodeId) -> Option<&mut HeadState> {
        match self.roles.get_mut(&node) {
            Some(NodeRole::Head(h)) => Some(h),
            _ => None,
        }
    }

    /// Cluster heads within `k` hops of `node`, with distances, sorted by
    /// `(distance, id)`. Optionally restricted to one network.
    pub(crate) fn heads_within(
        &self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        k: u32,
        network: Option<Addr>,
    ) -> Vec<(NodeId, u32)> {
        w.nodes_within(node, k)
            .into_iter()
            .filter(|(n, _)| match self.roles.get(n) {
                Some(NodeRole::Head(h)) => network.is_none_or(|net| h.network_id == net),
                _ => false,
            })
            .collect()
    }

    /// The nearest cluster head reachable from `node`, with its hop
    /// distance.
    pub(crate) fn nearest_head(
        &self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        network: Option<Addr>,
    ) -> Option<(NodeId, u32)> {
        self.nearest_head_excluding(w, node, network, None)
    }

    /// [`nearest_head`](Self::nearest_head), skipping `excluded`. The
    /// hardened reclamation path uses this to keep a member's `REC_REP`
    /// from being relayed through the very head whose silence is being
    /// reclaimed — a Byzantine head would black-hole the report and get
    /// its surviving members' leases vacated.
    pub(crate) fn nearest_head_excluding(
        &self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        network: Option<Addr>,
        excluded: Option<NodeId>,
    ) -> Option<(NodeId, u32)> {
        let dists = w.distances_from(node);
        self.roles
            .iter()
            .filter(|(n, _)| **n != node && Some(**n) != excluded)
            .filter_map(|(n, r)| match r {
                NodeRole::Head(h) if network.is_none_or(|net| h.network_id == net) => {
                    dists.get(n).map(|d| (*n, *d))
                }
                _ => None,
            })
            .min_by_key(|&(n, d)| (d, n))
    }

    /// Looks up a head by its configured address (lowest node id wins so
    /// the result is deterministic even if duplicate networks briefly
    /// give two heads the same address).
    pub(crate) fn head_by_ip(&self, ip: Addr) -> Option<NodeId> {
        self.roles
            .iter()
            .filter_map(|(n, r)| match r {
                NodeRole::Head(h) if h.ip == ip => Some(*n),
                _ => None,
            })
            .min()
    }

    pub(crate) fn fresh_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    pub(crate) fn fresh_claim_stamp(&mut self) -> u64 {
        self.next_claim_stamp += 1;
        self.next_claim_stamp
    }

    // ------------------------------------------------------------------
    // Join flow (§IV-B)
    // ------------------------------------------------------------------

    pub(crate) fn attempt_join(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let target_network = match self.roles.get_mut(&node) {
            Some(NodeRole::Unconfigured(js)) => {
                // Latency measures the successful exchange; hops of
                // abandoned attempts are overhead (already charged to
                // Metrics) but not configuration time.
                js.hops_spent = 0;
                js.target_network
            }
            _ => return,
        };

        // Candidates for common-node configuration: heads within two hops
        // (the clustering rule of §II-B).
        let near = self.heads_within(w, node, 2, target_network);
        if !near.is_empty() {
            let pick = match self.cfg.allocator_choice {
                AllocatorChoice::Nearest => near[0].0,
                AllocatorChoice::LargestBlock => {
                    // The alternative scheme: poll neighborhood heads for
                    // their available block sizes (§IV-B). Charge the
                    // 2-hop discovery broadcast plus one reply per head.
                    let _ = w.broadcast_within(node, 2, MsgCategory::Configuration, Msg::ComReq);
                    if let Some(NodeRole::Unconfigured(js)) = self.roles.get_mut(&node) {
                        js.hops_spent += 1; // the discovery broadcast
                    }
                    for (h, d) in &near {
                        let _ = h;
                        if let Some(NodeRole::Unconfigured(js)) = self.roles.get_mut(&node) {
                            js.hops_spent += d; // each head's size reply
                        }
                        w.metrics_mut()
                            .add_send(MsgCategory::Configuration, u64::from(*d));
                    }
                    *near
                        .iter()
                        .max_by_key(|(h, _)| self.head_state(*h).map_or(0, |s| s.pool.free_count()))
                        .map(|(h, _)| h)
                        .expect("near is non-empty")
                }
            };
            if let Ok(hops) = w.unicast(node, pick, MsgCategory::Configuration, Msg::ComReq) {
                let gen = if let Some(NodeRole::Unconfigured(js)) = self.roles.get_mut(&node) {
                    js.hops_spent += hops;
                    js.pending_allocator = Some(pick);
                    js.seen_network = true;
                    js.attempts
                } else {
                    0
                };
                let retry = self.cfg.join_backoff(gen);
                w.set_timer(node, retry, tag::mk(tag::JOIN_RETRY, u64::from(gen)));
                return;
            }
        }

        // No head within two hops: ask the nearest head anywhere for a
        // block and become a new cluster head (§IV-B, Figure 3).
        if let Some((head, _)) = self.nearest_head(w, node, target_network) {
            if let Ok(hops) = w.unicast(node, head, MsgCategory::Configuration, Msg::ChReq) {
                let gen = if let Some(NodeRole::Unconfigured(js)) = self.roles.get_mut(&node) {
                    js.hops_spent += hops;
                    js.pending_allocator = Some(head);
                    js.seen_network = true;
                    js.attempts
                } else {
                    0
                };
                let retry = self.cfg.join_backoff(gen);
                w.set_timer(node, retry, tag::mk(tag::JOIN_RETRY, u64::from(gen)));
                return;
            }
        }

        // Nobody reachable. The first-node procedure is reserved for
        // nodes that have never observed a network: anyone who has (a
        // merge rejoiner, or a joiner whose allocator drifted away)
        // keeps retrying until reconnected — founding a second network
        // would only create a duplicate space for a later merge to
        // dissolve.
        let seen = self.nearest_head(w, node, None).is_some()
            || match self.roles.get(&node) {
                Some(NodeRole::Unconfigured(js)) => js.seen_network,
                _ => false,
            };
        if seen || target_network.is_some() {
            if let Some(NodeRole::Unconfigured(js)) = self.roles.get_mut(&node) {
                js.seen_network = true;
                if js.attempts >= self.cfg.join_attempts {
                    // Long-stranded: give up on the old target but keep
                    // the slow retry (reconnection may come any time).
                    js.target_network = None;
                }
                let retry = self.cfg.join_backoff(js.attempts);
                let gen = u64::from(js.attempts);
                w.set_timer(node, retry, tag::mk(tag::JOIN_RETRY, gen));
            }
            return;
        }
        // Run the first-node procedure (broadcast the request, wait T_e,
        // retry up to Max_r times).
        self.first_node_probe(w, node);
    }

    pub(crate) fn first_node_probe(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let _ = w.broadcast_within(node, 1, MsgCategory::Configuration, Msg::ComReq);
        let te = self.cfg.te;
        if let Some(NodeRole::Unconfigured(js)) = self.roles.get_mut(&node) {
            js.first_node_probe = true;
            js.attempts += 1;
            js.hops_spent += 1;
        }
        w.set_timer(node, te, tag::mk(tag::FIRST_RETRY, 0));
    }

    pub(crate) fn become_first_head(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let (hops_spent, attempts) = match self.roles.get(&node) {
            Some(NodeRole::Unconfigured(js)) => (js.hops_spent, js.attempts),
            _ => return,
        };
        w.metrics_mut().record_join_retries(u64::from(attempts));
        let mut pool = AddressPool::from_block(self.cfg.space);
        // The founder takes a random address of the space: the network ID
        // (the founder's address) is then distinct across independently
        // founded networks, so hello-based merge detection works at any
        // distance — with identical IDs no side would ever rejoin.
        let offset = w.rng_range_u64(0..u64::from(self.cfg.space.len())) as u32;
        let ip = self.cfg.space.base().offset(offset);
        pool.allocate(ip, node.index())
            .expect("random address lies inside the fresh space");
        let network_id = ip;
        self.roles
            .insert(node, NodeRole::Head(HeadState::new(ip, pool, network_id)));
        self.stats.heads_configured += 1;
        self.record_first_config(w, node, hops_spent);
        w.mark_configured(node);
        self.start_head_timers(w, node);
    }

    /// Records a configuration-latency sample the first time `node`
    /// configures; merge reconfigurations are tracked in
    /// [`ProtocolStats::merges`] instead. Either way the corresponding
    /// flow span closes here: `Assigned` for a first configuration,
    /// `Finalized` for an open merge flow.
    pub(crate) fn record_first_config(&mut self, w: &mut Net<'_, Msg>, node: NodeId, hops: u32) {
        if self.configured_once.insert(node) {
            w.metrics_mut().record_config_latency(hops);
            w.flow_event(FlowKind::Join, node, FlowStage::Assigned);
        } else {
            w.flow_event(FlowKind::Merge, node, FlowStage::Finalized);
        }
    }

    pub(crate) fn start_head_timers(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let interval = self.cfg.hello_interval;
        w.set_timer(node, interval, tag::mk(tag::HELLO, 0));
    }

    pub(crate) fn start_common_timers(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let interval = self.cfg.hello_interval;
        w.set_timer(node, interval, tag::mk(tag::HELLO, 0));
        if self.cfg.update_policy == crate::params::UpdatePolicy::Periodic {
            let loc = self.cfg.loc_update_interval;
            w.set_timer(node, loc, tag::mk(tag::LOC_CHECK, 0));
        }
    }
}

impl ProtocolCore for Qbac {
    type Msg = Msg;

    fn on_join(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        self.roles
            .insert(node, NodeRole::Unconfigured(JoinState::default()));
        w.flow_event(FlowKind::Join, node, FlowStage::Started);
        self.attempt_join(w, node);
    }

    fn on_message(&mut self, w: &mut Net<'_, Msg>, to: NodeId, from: NodeId, msg: Msg) {
        // Fault-plan attacker nodes divert delivery to the adversary
        // plane once their start time has passed. With no attack
        // directives in the plan both checks are a single `None` each —
        // no RNG, no trace impact (the zero-cost-off guarantee).
        if let Some(kind) = w.attack_role(to) {
            if self.adversary_on_message(w, to, from, &msg, kind) {
                return;
            }
        } else if matches!(msg, Msg::OwnClaim { .. }) && w.attack_assigned(to).is_some() {
            // A designated replay-claim attacker captures claims it
            // receives honestly before its start time, then processes
            // them honestly (it is still undercover).
            self.adversary_capture_claim(w, to, &msg);
        }
        match msg {
            Msg::Hello {
                sender_ip,
                is_head,
                network_id,
            } => self.on_hello(w, to, from, sender_ip, is_head, network_id),

            Msg::ComReq => self.on_com_req(w, to, from, None),
            Msg::ComReqFwd { requestor } => self.on_com_req(w, to, from, Some(requestor)),
            Msg::ComCfg {
                ip,
                configurer,
                network_id,
                spent_hops,
                auth,
            } => self.on_com_cfg(w, to, from, ip, configurer, network_id, spent_hops, auth),
            Msg::ComAck => {}
            Msg::ComRej => self.on_config_rejected(w, to),

            Msg::ChReq => self.on_ch_req(w, to, from),
            Msg::ChPrp { available } => self.on_ch_prp(w, to, from, available),
            Msg::ChCnf => self.on_ch_cnf(w, to, from),
            Msg::ChCfg {
                block,
                ip,
                configurer,
                network_id,
                spent_hops,
                records,
            } => self.on_ch_cfg(
                w, to, from, block, ip, configurer, network_id, spent_hops, records,
            ),
            Msg::ChAck => {}
            Msg::ChRej => self.on_config_rejected(w, to),

            Msg::QuorumClt { seq, op } => self.on_quorum_clt(w, to, from, seq, op),
            Msg::QuorumCfm {
                seq,
                grant,
                stamp,
                auth,
            } => {
                self.on_quorum_cfm(w, to, from, seq, grant, stamp, auth);
            }
            Msg::QuorumCommit {
                owner,
                addr,
                record,
                auth,
            } => {
                self.on_quorum_commit(w, to, owner, addr, record, auth);
            }

            Msg::ReplicaPush {
                owner,
                owner_ip,
                blocks,
                table,
                reply_requested,
            } => self.on_replica_push(w, to, owner, owner_ip, blocks, table, reply_requested),

            Msg::UpdateLoc { configurer, ip } => self.on_update_loc(w, to, from, configurer, ip),
            Msg::ReturnAddr { configurer, ip } => {
                self.on_return_addr(w, to, from, configurer, ip);
            }
            Msg::ReturnAddrAck | Msg::ReturnBlockAck => {
                // Departure handshake complete: the node may now leave.
                w.remove_node(to);
            }
            Msg::ReturnBlock {
                blocks,
                table,
                ip,
                members,
            } => self.on_return_block(w, to, from, blocks, table, ip, members),
            Msg::Resign => self.on_resign(w, to, from),
            Msg::AllocatorChange { new_configurer } => {
                self.on_allocator_change(w, to, from, new_configurer);
            }

            Msg::AddrRec {
                target,
                target_ip,
                initiator,
                initiator_ip,
                auth,
            } => self.on_addr_rec(w, to, target, target_ip, initiator, initiator_ip, auth),
            Msg::RecRep {
                target_ip,
                ip,
                node,
                target,
            } => self.on_rec_rep(w, to, from, target_ip, ip, node, target),

            Msg::RepReq => {
                let _ = w.unicast(to, from, MsgCategory::Maintenance, Msg::RepAck);
            }
            Msg::RepAck => self.on_rep_ack(w, to, from),

            Msg::Reinit { network_id, force } => self.on_reinit(w, to, from, network_id, force),

            Msg::OwnClaim {
                claimant_ip,
                blocks,
                claim_stamp,
                auth,
            } => self.on_own_claim(w, to, from, claimant_ip, blocks, claim_stamp, auth),
            Msg::OwnGrant { blocks, records } => self.on_own_grant(w, to, from, blocks, records),
        }
    }

    fn on_timer(&mut self, w: &mut Net<'_, Msg>, node: NodeId, t: u64) {
        // An active attacker repurposes its hello tick as the adversary
        // action beat and lets its other timers lapse; before it is
        // configured it stays honest so it can acquire an insider
        // identity first.
        if let Some(kind) = w.attack_role(node) {
            if self.adversary_on_timer(w, node, t, kind) {
                return;
            }
        }
        match tag::kind(t) {
            tag::HELLO => self.on_hello_timer(w, node),
            tag::LOC_CHECK => self.on_loc_check(w, node),
            tag::FIRST_RETRY => self.on_first_retry(w, node),
            tag::VOTE_TIMEOUT => self.on_vote_timeout(w, node, tag::payload(t)),
            tag::REP_TIMEOUT => self.on_rep_timeout(w, node, NodeId::new(tag::payload(t))),
            tag::RECLAIM_FINALIZE => {
                self.on_reclaim_finalize(w, node, NodeId::new(tag::payload(t)));
            }
            tag::JOIN_RETRY => self.on_join_retry(w, node, tag::payload(t) as u32),
            tag::DEPART_TIMEOUT => self.on_depart_timeout(w, node),
            _ => {}
        }
    }

    fn on_leave(&mut self, w: &mut Net<'_, Msg>, node: NodeId, graceful: bool) {
        if graceful {
            self.graceful_leave(w, node);
        } else {
            self.abrupt_leave(w, node);
        }
    }

    fn is_cluster_head(&self, node: NodeId) -> bool {
        self.roles.get(&node).is_some_and(NodeRole::is_head)
    }
}
