use addrspace::{Addr, AddrBlock, AddrRecord, AllocationTable};
use proto_io::NodeId;
use quorum::VersionStamp;
use serde::{Deserialize, Serialize};

/// The operation an allocator asks its quorum to vote on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuorumOp {
    /// "Is this address of `owner`'s space free, per your replica?"
    CheckAddr {
        /// The cluster head whose space the address belongs to.
        owner: NodeId,
        /// The proposed address.
        addr: Addr,
    },
    /// "May I split half of my block for a new cluster head?"
    SplitBlock {
        /// The allocator whose block is being halved.
        owner: NodeId,
    },
    /// "Do these contested blocks belong to `claimant`, per your
    /// replicas?" — post-merge pool-ownership reconciliation. The rival
    /// is excluded from the electorate; a member grants when its
    /// replica of the claimant covers the blocks, or when it holds no
    /// contradicting replica at all (the deterministic tiebreak already
    /// selected the claimant).
    ClaimBlocks {
        /// The head claiming the contested space (the vote's allocator).
        claimant: NodeId,
        /// The head that will cede the space if the claim carries.
        rival: NodeId,
        /// The contested blocks (intersection of the two pools).
        blocks: Vec<AddrBlock>,
    },
}

/// Wire messages of the quorum-based autoconfiguration protocol.
///
/// Names follow the paper: `COM_*` for common-node configuration, `CH_*`
/// for cluster-head configuration (Table 1), `QUORUM_*` for voting,
/// `UPDATE_LOC` / `RETURN_ADDR` for movement and departure (§IV-C),
/// `ADDR_REC` / `REC_REP` for reclamation (§IV-D), and `REP_REQ` for
/// liveness probing during quorum adjustment (§V-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Msg {
    /// Periodic beacon: sender identity plus the cluster heads it knows
    /// within three hops, and its network ID for partition detection.
    Hello {
        /// Sender's configured address, if any.
        sender_ip: Option<Addr>,
        /// Whether the sender is a cluster head.
        is_head: bool,
        /// The sender's network ID (lowest address of its network).
        network_id: Option<Addr>,
    },

    // -------------------- common-node configuration --------------------
    /// Requestor → allocator: request one IP address.
    ComReq,
    /// Allocator → requestor: here is your address.
    ComCfg {
        /// The assigned address.
        ip: Addr,
        /// The allocator's address (the node's *configurer*).
        configurer: Addr,
        /// Network ID inherited from the allocator.
        network_id: Addr,
        /// Hop cost the allocator accumulated on this node's behalf
        /// (quorum collection), folded into the latency metric.
        spent_hops: u32,
        /// Origin-authentication tag ([`crate::auth::com_cfg_tag`]);
        /// verified only by hardened receivers.
        auth: u64,
    },
    /// Requestor → allocator: configuration acknowledged.
    ComAck,
    /// Allocator → requestor: cannot serve (no space, no quorum); the
    /// requestor retries elsewhere.
    ComRej,

    // -------------------- cluster-head configuration -------------------
    /// Requestor → nearest cluster head: request an address block.
    ChReq,
    /// Allocator → requestor: proposal (Table 1's `CH_PRP`).
    ChPrp {
        /// Size of the allocator's available space, for the
        /// largest-block selection policy.
        available: u64,
    },
    /// Requestor → allocator: proposal accepted (`CH_CNF`).
    ChCnf,
    /// Allocator → requestor: block delegated (`CH_CFG`).
    ChCfg {
        /// The delegated block.
        block: AddrBlock,
        /// The new head's own address (first free of the block).
        ip: Addr,
        /// The allocator's address.
        configurer: Addr,
        /// Network ID inherited from the allocator.
        network_id: Addr,
        /// Hop cost accumulated by the allocator for this configuration.
        spent_hops: u32,
        /// Allocation records riding along with the block (addresses in
        /// the delegated half that were already assigned; the new head
        /// imports them and takes over as their allocator).
        records: Vec<(Addr, AddrRecord)>,
    },
    /// Requestor → allocator: block received (`CH_ACK`).
    ChAck,
    /// Allocator → requestor: cannot delegate.
    ChRej,

    // -------------------------- quorum voting --------------------------
    /// Allocator → `QDSet` member: vote request (`QUORUM_CLT`).
    QuorumClt {
        /// Identifies the collection round at the allocator.
        seq: u64,
        /// The operation to vote on.
        op: QuorumOp,
    },
    /// `QDSet` member → allocator: vote (`QUORUM_CFM`).
    QuorumCfm {
        /// Round being answered.
        seq: u64,
        /// Whether the replica supports the operation.
        grant: bool,
        /// Stamp of the voter's replica record, for freshest-copy wins.
        stamp: VersionStamp,
        /// Origin-authentication tag ([`crate::auth::quorum_cfm_tag`]);
        /// verified only by hardened allocators.
        auth: u64,
    },
    /// Allocator → quorum members: commit an address-state change to
    /// their replicas after a successful operation.
    QuorumCommit {
        /// The cluster head whose space changed.
        owner: NodeId,
        /// The address updated.
        addr: Addr,
        /// The new record (status + stamp).
        record: AddrRecord,
        /// Origin-authentication tag
        /// ([`crate::auth::quorum_commit_tag`]); verified only by
        /// hardened receivers. Commits rewrite the owner's
        /// *authoritative* table, so a reflected commit with a
        /// superseding stamp must not verify.
        auth: u64,
    },

    // ------------------------ replica management -----------------------
    /// A cluster head pushes a full copy of its space to a `QDSet`
    /// member (initial distribution and quorum growth).
    ReplicaPush {
        /// The space's owner.
        owner: NodeId,
        /// The owner's address.
        owner_ip: Addr,
        /// The owner's blocks.
        blocks: Vec<AddrBlock>,
        /// The owner's allocation table.
        table: AllocationTable,
        /// If `true`, the receiver should answer with its own
        /// `ReplicaPush` (mutual backup on first contact).
        reply_requested: bool,
    },

    // ----------------------- movement & departure ----------------------
    /// Common node → nearest cluster head: location update (§IV-C.1).
    UpdateLoc {
        /// The node's configurer address.
        configurer: Addr,
        /// The node's own address.
        ip: Addr,
    },
    /// Common node → nearest cluster head: graceful departure, return
    /// this address.
    ReturnAddr {
        /// The node's configurer address.
        configurer: Addr,
        /// The address being returned.
        ip: Addr,
    },
    /// Acknowledgement for `ReturnAddr`; the node may now leave.
    ReturnAddrAck,
    /// Departing cluster head → chosen successor: take over my space.
    ReturnBlock {
        /// The departing head's blocks.
        blocks: Vec<AddrBlock>,
        /// The departing head's allocation table.
        table: AllocationTable,
        /// The departing head's own address (to be vacated).
        ip: Addr,
        /// Members configured by the departing head, for allocator-change
        /// notification.
        members: Vec<(Addr, NodeId)>,
    },
    /// Acknowledgement for `ReturnBlock`; the head may now leave.
    ReturnBlockAck,
    /// Departing cluster head → `QDSet` member: drop me from your
    /// `QDSet` (§IV-C.2 "resigning itself in their QDSet").
    Resign,
    /// New allocator → member of a departed head: your allocator changed.
    AllocatorChange {
        /// The new allocator's address.
        new_configurer: Addr,
    },

    // --------------------------- reclamation ---------------------------
    /// Flooded by the reclamation initiator: cluster head `target`
    /// vanished; its members must report in (`ADDR_REC`).
    AddrRec {
        /// Simulator id of the vanished head.
        target: NodeId,
        /// The vanished head's address.
        target_ip: Addr,
        /// The initiator (absorbs the space).
        initiator: NodeId,
        /// The initiator's address (members' new configurer).
        initiator_ip: Addr,
        /// Origin-authentication tag ([`crate::auth::addr_rec_tag`]);
        /// verified only by hardened receivers.
        auth: u64,
    },
    /// Member of the vanished head → closest cluster head: I still hold
    /// this address (`REC_REP`).
    RecRep {
        /// The vanished head's address.
        target_ip: Addr,
        /// The reporting node's address.
        ip: Addr,
        /// The reporting node's simulator id.
        node: NodeId,
        /// The vanished head's simulator id.
        target: NodeId,
    },

    // ------------------------ quorum adjustment ------------------------
    /// Liveness probe to a silent `QDSet` member (`REP_REQ`).
    RepReq,
    /// Liveness probe response.
    RepAck,

    // ---------------------- borrowing & partition ----------------------
    /// Agent forwarding (§V-A): a depleted cluster head relays a
    /// configuration request to its configurer on behalf of `requestor`;
    /// the remote head answers the requestor directly.
    ComReqFwd {
        /// The node ultimately being configured.
        requestor: NodeId,
    },
    /// An isolated cluster head re-initialized its partition as a fresh
    /// network (§V-C), or a duplicate network dissolved after a merge;
    /// the receiver must reacquire an address in `network_id`.
    Reinit {
        /// The network to (re)join.
        network_id: Addr,
        /// Reconfigure even when the receiver's network ID already
        /// matches (duplicate-space dissolution: the IDs collide).
        force: bool,
    },

    // --------------------- ownership reconciliation --------------------
    /// Winner → loser of a post-merge ownership conflict: the quorum
    /// confirmed my claim over these contested blocks (`OWN_CLAIM`);
    /// cede them. Sender identity names the claimant; `claimant_ip`
    /// lets the receiver re-verify the deterministic tiebreak.
    OwnClaim {
        /// The claimant's address (lower `(ip, node)` wins).
        claimant_ip: Addr,
        /// The contested blocks being claimed.
        blocks: Vec<AddrBlock>,
        /// Monotonic claim stamp from the claimant's sequence counter;
        /// hardened receivers reject claims whose stamp is not fresh
        /// for `(receiver, claimant_ip)` (replay rejection).
        claim_stamp: u64,
        /// Origin-authentication tag ([`crate::auth::own_claim_tag`]),
        /// bound to the recipient; verified only by hardened receivers.
        auth: u64,
    },
    /// Loser → winner: contested blocks ceded (`OWN_GRANT`). Live
    /// leases inside the ceded space ride along so the winner re-homes
    /// them; an empty record list means the space was already clean (or
    /// the cede was a re-delivered duplicate).
    OwnGrant {
        /// The blocks that were ceded (echo of the claim).
        blocks: Vec<AddrBlock>,
        /// Allocation records drained from the ceded space.
        records: Vec<(Addr, AddrRecord)>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m = Msg::ComCfg {
            ip: Addr::new(1),
            configurer: Addr::new(2),
            network_id: Addr::new(0),
            spent_hops: 3,
            auth: 0,
        };
        assert_eq!(m.clone(), m);
    }

    #[test]
    fn quorum_ops_distinguish_owner() {
        let a = QuorumOp::CheckAddr {
            owner: NodeId::new(4),
            addr: Addr::new(9),
        };
        let b = QuorumOp::CheckAddr {
            owner: NodeId::new(5),
            addr: Addr::new(9),
        };
        assert_ne!(a, b);
        assert_ne!(
            a,
            QuorumOp::SplitBlock {
                owner: NodeId::new(4)
            }
        );
    }
}
