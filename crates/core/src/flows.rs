//! Configuration flows (§IV-B, Figures 2 and 3, Table 1) plus address
//! borrowing and agent forwarding (§V-A).

use crate::msg::{Msg, QuorumOp};
use crate::protocol::{tag, Qbac};
use crate::roles::{CommonState, HeadState, NodeRole};
use crate::vote::VotePurpose;
use addrspace::{Addr, AddrBlock, AddrStatus, AllocationTable};
use proto_io::{FlowKind, FlowStage, MsgCategory, Net, NodeId};

impl Qbac {
    // ------------------------------------------------------------------
    // Vote completion
    // ------------------------------------------------------------------

    /// Applies the outcome of a completed quorum collection.
    pub(crate) fn finish_vote(&mut self, w: &mut Net<'_, Msg>, seq: u64, ok: bool) {
        let Some(vote) = self.votes.remove(&seq) else {
            return;
        };
        let allocator = vote.allocator;
        let spent = vote.hops + vote.req_hops;

        // One quorum round normally; two when the §V-B shrink kicked in.
        w.metrics_mut()
            .record_vote_rounds(if vote.shrunk { 2 } else { 1 });
        let (flow_kind, flow_node) = match &vote.purpose {
            VotePurpose::CommonConfig { requestor, .. }
            | VotePurpose::Borrow { requestor, .. }
            | VotePurpose::HeadConfig { requestor } => (FlowKind::Join, *requestor),
            VotePurpose::OwnBlocks { .. } => (FlowKind::MergeOwnership, allocator),
        };
        w.flow_event(
            flow_kind,
            flow_node,
            FlowStage::VotesGathered {
                grants: vote.grants.len() as u32,
                refusals: vote.refusals.len() as u32,
            },
        );

        match vote.purpose {
            VotePurpose::CommonConfig { requestor, addr } => {
                if !ok {
                    self.reject_common(w, allocator, requestor);
                    return;
                }
                let Some(head) = self.head_state_mut(allocator) else {
                    return;
                };
                if head.pool.allocate(addr, requestor.index()).is_err() {
                    self.reject_common(w, allocator, requestor);
                    return;
                }
                let record = head.pool.table().record(addr);
                let configurer_ip = head.ip;
                let network_id = head.network_id;
                head.members.insert(addr, requestor);
                // The quorum update happens *after* the requestor is
                // configured (§IV-B), so it adds overhead but no latency.
                self.commit_to_quorum(w, allocator, allocator, addr, record, &vote.grants);
                self.send_com_cfg(
                    w,
                    allocator,
                    requestor,
                    addr,
                    configurer_ip,
                    network_id,
                    spent,
                );
            }

            VotePurpose::Borrow {
                requestor,
                owner,
                addr,
            } => {
                if !ok {
                    self.reject_common(w, allocator, requestor);
                    return;
                }
                let Some(head) = self.head_state_mut(allocator) else {
                    return;
                };
                let Some(rep) = head.quorum_space.get_mut(&owner) else {
                    self.reject_common(w, allocator, requestor);
                    return;
                };
                rep.table
                    .set(addr, AddrStatus::Allocated(requestor.index()));
                let record = rep.table.record(addr);
                let configurer_ip = head.ip;
                let network_id = head.network_id;
                head.members.insert(addr, requestor);
                self.stats.borrows += 1;
                self.commit_to_quorum(w, allocator, owner, addr, record, &vote.grants);
                // The owner's authoritative copy must learn of the borrow
                // even if it was not among the granters.
                if !vote.grants.contains(&owner) {
                    let auth =
                        crate::auth::quorum_commit_tag(self.cfg.auth_key, owner, addr, record);
                    let _ = w.unicast(
                        allocator,
                        owner,
                        MsgCategory::Configuration,
                        Msg::QuorumCommit {
                            owner,
                            addr,
                            record,
                            auth,
                        },
                    );
                }
                self.send_com_cfg(
                    w,
                    allocator,
                    requestor,
                    addr,
                    configurer_ip,
                    network_id,
                    spent,
                );
            }

            VotePurpose::HeadConfig { requestor } => {
                if !ok {
                    self.reject_head(w, allocator, requestor);
                    return;
                }
                let Some(head) = self.head_state_mut(allocator) else {
                    return;
                };
                let Ok((block, records)) = head.pool.split_half_carrying() else {
                    self.reject_head(w, allocator, requestor);
                    return;
                };
                // The new head's own address: the first free one of the
                // delegated block (carried allocations are skipped).
                let taken: std::collections::BTreeSet<Addr> = records
                    .iter()
                    .filter(|(_, r)| !r.status.is_available())
                    .map(|(a, _)| *a)
                    .collect();
                let Some(new_ip) = block.iter().find(|a| !taken.contains(a)) else {
                    // Fully-allocated half: hand it back and give up.
                    if let Some(head) = self.head_state_mut(allocator) {
                        let _ = head.pool.absorb(block);
                        for (a, r) in records {
                            head.pool.table_mut().apply(a, r);
                        }
                    }
                    self.reject_head(w, allocator, requestor);
                    return;
                };
                // Members riding along stop being ours.
                for (a, r) in &records {
                    if !r.status.is_available() {
                        head.members.remove(a);
                    }
                }
                let configurer_ip = head.ip;
                let network_id = head.network_id;
                let cfg_hops = w.hops_between(allocator, requestor).unwrap_or(0);
                // The allocator's space changed shape: refresh replicas.
                // Replica distribution is post-configuration overhead, not
                // latency.
                self.push_replica(w, allocator, MsgCategory::Configuration);
                let msg = Msg::ChCfg {
                    block,
                    ip: new_ip,
                    configurer: configurer_ip,
                    network_id,
                    spent_hops: spent + cfg_hops,
                    records: records.clone(),
                };
                if w.unicast(allocator, requestor, MsgCategory::Configuration, msg)
                    .is_err()
                {
                    // Requestor vanished: take the block back.
                    if let Some(head) = self.head_state_mut(allocator) {
                        let _ = head.pool.absorb(block);
                        for (a, r) in records {
                            head.pool.table_mut().apply(a, r);
                        }
                    }
                }
            }

            VotePurpose::OwnBlocks { rival, blocks } => {
                let Some(head) = self.head_state(allocator) else {
                    return;
                };
                if !ok {
                    // Quorum refused or shrank away: drop this claim.
                    // The per-hello conflict scan re-detects the overlap
                    // and retries with a fresher electorate.
                    w.flow_event(FlowKind::MergeOwnership, allocator, FlowStage::Abandoned);
                    return;
                }
                let claimant_ip = head.ip;
                let claim_stamp = self.fresh_claim_stamp();
                let auth =
                    crate::auth::own_claim_tag(self.cfg.auth_key, claimant_ip, rival, claim_stamp);
                if w.unicast(
                    allocator,
                    rival,
                    MsgCategory::Maintenance,
                    Msg::OwnClaim {
                        claimant_ip,
                        blocks,
                        claim_stamp,
                        auth,
                    },
                )
                .is_err()
                {
                    // Rival unreachable: the claim lapses; the scan will
                    // reopen it once the rival is back in contact.
                    w.flow_event(FlowKind::MergeOwnership, allocator, FlowStage::Abandoned);
                }
            }
        }
    }

    /// Sends `QUORUM_COMMIT` for a changed record to the granting quorum
    /// members; returns the hop cost.
    pub(crate) fn commit_to_quorum(
        &mut self,
        w: &mut Net<'_, Msg>,
        allocator: NodeId,
        owner: NodeId,
        addr: Addr,
        record: addrspace::AddrRecord,
        grants: &std::collections::BTreeSet<NodeId>,
    ) -> u32 {
        let auth = crate::auth::quorum_commit_tag(self.cfg.auth_key, owner, addr, record);
        let mut hops = 0;
        for member in grants {
            if let Ok(h) = w.unicast(
                allocator,
                *member,
                MsgCategory::Configuration,
                Msg::QuorumCommit {
                    owner,
                    addr,
                    record,
                    auth,
                },
            ) {
                hops += h;
            }
        }
        hops
    }

    #[allow(clippy::too_many_arguments)]
    fn send_com_cfg(
        &mut self,
        w: &mut Net<'_, Msg>,
        allocator: NodeId,
        requestor: NodeId,
        ip: Addr,
        configurer: Addr,
        network_id: Addr,
        spent_hops: u32,
    ) {
        let cfg_hops = w.hops_between(allocator, requestor).unwrap_or(0);
        let auth = crate::auth::com_cfg_tag(self.cfg.auth_key, configurer, ip, requestor);
        let msg = Msg::ComCfg {
            ip,
            configurer,
            network_id,
            spent_hops: spent_hops + cfg_hops,
            auth,
        };
        if w.unicast(allocator, requestor, MsgCategory::Configuration, msg)
            .is_err()
        {
            // Requestor unreachable: roll the allocation back locally and
            // tell the quorum.
            if let Some(head) = self.head_state_mut(allocator) {
                if head.pool.owns(ip) && head.pool.release(ip).is_ok() {
                    let record = head.pool.table().record(ip);
                    head.members.remove(&ip);
                    let grants: std::collections::BTreeSet<NodeId> =
                        head.electorate().into_iter().collect();
                    self.commit_to_quorum(w, allocator, allocator, ip, record, &grants);
                }
            }
        }
    }

    fn reject_common(&mut self, w: &mut Net<'_, Msg>, allocator: NodeId, requestor: NodeId) {
        let _ = w.unicast(
            allocator,
            requestor,
            MsgCategory::Configuration,
            Msg::ComRej,
        );
    }

    fn reject_head(&mut self, w: &mut Net<'_, Msg>, allocator: NodeId, requestor: NodeId) {
        let _ = w.unicast(allocator, requestor, MsgCategory::Configuration, Msg::ChRej);
    }

    // ------------------------------------------------------------------
    // Common-node configuration (Figure 2)
    // ------------------------------------------------------------------

    /// An allocator receives `COM_REQ` (or a forwarded one as agent).
    pub(crate) fn on_com_req(
        &mut self,
        w: &mut Net<'_, Msg>,
        allocator: NodeId,
        from: NodeId,
        forwarded_for: Option<NodeId>,
    ) {
        let requestor = forwarded_for.unwrap_or(from);
        let Some(head) = self.head_state(allocator) else {
            // The first-node probe broadcasts COM_REQ; non-heads ignore it.
            return;
        };

        // Idempotent re-request: if this requestor already holds an
        // assignment (its COM_CFG reply was lost and it timed out), re-send
        // the same address instead of burning a second one on a new vote.
        if let Some(addr) = head
            .members
            .iter()
            .find(|(_, n)| **n == requestor)
            .map(|(a, _)| *a)
        {
            let configurer_ip = head.ip;
            let network_id = head.network_id;
            self.send_com_cfg(w, allocator, requestor, addr, configurer_ip, network_id, 0);
            return;
        }

        // Propose the first free address of IPSpace, scanning from the
        // head's own address so allocations cluster in its half of the
        // block and the far half stays clean for delegation (§IV-B).
        if let Some(addr) = head.pool.first_free_from(head.ip) {
            self.start_vote(
                w,
                allocator,
                QuorumOp::CheckAddr {
                    owner: allocator,
                    addr,
                },
                VotePurpose::CommonConfig { requestor, addr },
                0,
                MsgCategory::Configuration,
            );
            return;
        }

        // IPSpace exhausted: borrow from QuorumSpace (§V-A).
        let borrow = if self.cfg.enable_borrowing {
            head.quorum_space
                .iter()
                .find_map(|(owner, rep)| rep.first_free().map(|addr| (*owner, addr)))
        } else {
            None
        };
        if let Some((owner, addr)) = borrow {
            self.start_vote(
                w,
                allocator,
                QuorumOp::CheckAddr { owner, addr },
                VotePurpose::Borrow {
                    requestor,
                    owner,
                    addr,
                },
                0,
                MsgCategory::Configuration,
            );
            return;
        }

        // Both spaces depleted: act as agent and forward to the
        // configurer (§V-A). Never forward a forward (no loops).
        if forwarded_for.is_none() {
            if let Some(parent) = self.head_state(allocator).and_then(|h| h.configurer) {
                if w.is_alive(parent)
                    && w.unicast(
                        allocator,
                        parent,
                        MsgCategory::Configuration,
                        Msg::ComReqFwd { requestor },
                    )
                    .is_ok()
                {
                    self.stats.agent_forwards += 1;
                    return;
                }
            }
        }
        self.reject_common(w, allocator, requestor);
    }

    /// The requestor receives `COM_CFG` and becomes a common node.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_com_cfg(
        &mut self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        from: NodeId,
        ip: Addr,
        configurer: Addr,
        network_id: Addr,
        spent_hops: u32,
        auth: u64,
    ) {
        // Hardened: a grant must carry the tag only a key-holding
        // allocator can compute for (configurer, ip, us) — a squatted
        // grant from a rogue head is dropped and the join retry keeps
        // the node probing legitimate allocators.
        if self.cfg.harden
            && auth != crate::auth::com_cfg_tag(self.cfg.auth_key, configurer, ip, node)
        {
            return;
        }
        let Some(NodeRole::Unconfigured(js)) = self.roles.get(&node) else {
            return; // duplicate or stale configuration
        };
        let base_hops = js.hops_spent;
        let attempts = js.attempts;
        let ack_hops = w
            .unicast(node, from, MsgCategory::Configuration, Msg::ComAck)
            .unwrap_or(0);
        self.roles.insert(
            node,
            NodeRole::Common(CommonState {
                ip,
                configurer: from,
                configurer_ip: configurer,
                administrator: None,
                network_id,
            }),
        );
        self.stats.common_configured += 1;
        w.metrics_mut().record_join_retries(u64::from(attempts));
        self.record_first_config(w, node, base_hops + spent_hops + ack_hops);
        w.mark_configured(node);
        self.start_common_timers(w, node);
    }

    /// A configuration attempt was rejected; retry after a pause. A node
    /// that exhausts its attempt budget records one failure and drops to
    /// a slow background retry — it keeps trying as long as it lives
    /// (mobility may reconnect it at any time).
    pub(crate) fn on_config_rejected(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let Some(NodeRole::Unconfigured(js)) = self.roles.get_mut(&node) else {
            return;
        };
        js.pending_allocator = None;
        js.attempts += 1;
        w.flow_event(
            FlowKind::Join,
            node,
            FlowStage::Retry {
                attempt: js.attempts,
            },
        );
        if js.attempts == self.cfg.join_attempts {
            w.metrics_mut().record_config_failure();
            w.metrics_mut().record_join_retries(u64::from(js.attempts));
            w.flow_event(FlowKind::Join, node, FlowStage::Abandoned);
        }
        let retry = self.cfg.join_backoff(js.attempts);
        let gen = u64::from(js.attempts);
        w.set_timer(node, retry, tag::mk(tag::JOIN_RETRY, gen));
    }

    /// The join-retry timer fired: if still unconfigured and this is the
    /// latest armed retry (stale generations are ignored so parallel
    /// timers cannot multiply), try again.
    pub(crate) fn on_join_retry(&mut self, w: &mut Net<'_, Msg>, node: NodeId, gen: u32) {
        match self.roles.get_mut(&node) {
            Some(NodeRole::Unconfigured(js)) if !js.first_node_probe => {
                if gen < js.attempts {
                    return; // a newer retry is already armed
                }
                js.pending_allocator = None;
                js.attempts += 1;
                w.flow_event(
                    FlowKind::Join,
                    node,
                    FlowStage::Retry {
                        attempt: js.attempts,
                    },
                );
                if js.attempts == self.cfg.join_attempts {
                    w.metrics_mut().record_config_failure();
                    w.metrics_mut().record_join_retries(u64::from(js.attempts));
                    w.flow_event(FlowKind::Join, node, FlowStage::Abandoned);
                }
                self.attempt_join(w, node);
            }
            _ => {}
        }
    }

    /// The first-node `T_e` timer fired (§IV-B).
    pub(crate) fn on_first_retry(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let Some(NodeRole::Unconfigured(js)) = self.roles.get(&node) else {
            return;
        };
        if !js.first_node_probe {
            return;
        }
        // If a configured network appeared meanwhile, join it instead.
        if self.nearest_head(w, node, None).is_some() {
            if let Some(NodeRole::Unconfigured(js)) = self.roles.get_mut(&node) {
                js.first_node_probe = false;
                js.attempts = 0;
                js.seen_network = true;
            }
            self.attempt_join(w, node);
            return;
        }
        if js.attempts >= self.cfg.max_r {
            self.become_first_head(w, node);
        } else {
            self.first_node_probe(w, node);
        }
    }

    // ------------------------------------------------------------------
    // Cluster-head configuration (Figure 3, Table 1)
    // ------------------------------------------------------------------

    /// A head receives `CH_REQ`: answer with a proposal.
    pub(crate) fn on_ch_req(&mut self, w: &mut Net<'_, Msg>, allocator: NodeId, requestor: NodeId) {
        let Some(head) = self.head_state(allocator) else {
            return;
        };
        if head.pool.total_len() < 2 || head.pool.free_count() < 2 {
            self.reject_head(w, allocator, requestor);
            return;
        }
        let available = head.pool.free_count();
        if let Ok(h) = w.unicast(
            allocator,
            requestor,
            MsgCategory::Configuration,
            Msg::ChPrp { available },
        ) {
            *self.alloc_spent.entry((allocator, requestor)).or_insert(0) += h;
        }
    }

    /// The requestor receives `CH_PRP` and confirms.
    pub(crate) fn on_ch_prp(
        &mut self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        from: NodeId,
        _available: u64,
    ) {
        let Some(NodeRole::Unconfigured(js)) = self.roles.get_mut(&node) else {
            return;
        };
        if js.pending_allocator != Some(from) {
            return;
        }
        if let Ok(h) = w.unicast(node, from, MsgCategory::Configuration, Msg::ChCnf) {
            if let Some(NodeRole::Unconfigured(js)) = self.roles.get_mut(&node) {
                js.hops_spent += h;
            }
        }
    }

    /// The allocator receives `CH_CNF`: run the split vote.
    pub(crate) fn on_ch_cnf(&mut self, w: &mut Net<'_, Msg>, allocator: NodeId, requestor: NodeId) {
        if self.head_state(allocator).is_none() {
            return;
        }
        let req_hops = self
            .alloc_spent
            .remove(&(allocator, requestor))
            .unwrap_or(0);
        self.start_vote(
            w,
            allocator,
            QuorumOp::SplitBlock { owner: allocator },
            VotePurpose::HeadConfig { requestor },
            req_hops,
            MsgCategory::Configuration,
        );
    }

    /// The requestor receives `CH_CFG` and becomes a cluster head.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_ch_cfg(
        &mut self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        from: NodeId,
        block: AddrBlock,
        ip: Addr,
        configurer: Addr,
        network_id: Addr,
        spent_hops: u32,
        records: Vec<(Addr, addrspace::AddrRecord)>,
    ) {
        let Some(NodeRole::Unconfigured(js)) = self.roles.get(&node) else {
            return;
        };
        let mut total = js.hops_spent + spent_hops;
        let attempts = js.attempts;

        let mut pool = addrspace::AddressPool::from_block(block);
        // Import the allocation records that rode along with the block.
        for (a, r) in &records {
            pool.table_mut().apply(*a, *r);
        }
        if pool.allocate(ip, node.index()).is_err() {
            // Malformed delegation; retry from scratch.
            self.on_config_rejected(w, node);
            return;
        }
        let mut state = HeadState::new(ip, pool, network_id);
        // Members inherited with the block are ours now.
        for (a, r) in &records {
            if let addrspace::AddrStatus::Allocated(owner) = r.status {
                state.members.insert(*a, NodeId::new(owner));
            }
        }
        state.configurer = Some(from);
        state.configurer_ip = Some(configurer);

        // Initialize QDSet: adjacent cluster heads within three hops
        // (§IV-A), same network.
        let adjacent = self.heads_within(w, node, 3, Some(network_id));
        for (h, _) in &adjacent {
            if let Some(other) = self.head_state(*h) {
                state.qd_set.insert(*h, other.ip);
            }
        }
        self.roles.insert(node, NodeRole::Head(state));

        total += w
            .unicast(node, from, MsgCategory::Configuration, Msg::ChAck)
            .unwrap_or(0);
        // Distribute replicas to the QDSet and request theirs in return
        // (overhead only; the head is already configured).
        self.push_replica_full(w, node, MsgCategory::Configuration, true);
        // Tell inherited members their allocator changed (§IV-C.2's
        // notification, applied to delegation).
        let inherited: Vec<NodeId> = records
            .iter()
            .filter_map(|(_, r)| match r.status {
                addrspace::AddrStatus::Allocated(owner) => Some(NodeId::new(owner)),
                _ => None,
            })
            .filter(|m| *m != node)
            .collect();
        let my_ip = ip;
        for m in inherited {
            let _ = w.unicast(
                node,
                m,
                MsgCategory::Configuration,
                Msg::AllocatorChange {
                    new_configurer: my_ip,
                },
            );
        }

        self.stats.heads_configured += 1;
        w.metrics_mut().record_join_retries(u64::from(attempts));
        self.record_first_config(w, node, total);
        w.mark_configured(node);
        self.start_head_timers(w, node);
    }

    // ------------------------------------------------------------------
    // Replica distribution
    // ------------------------------------------------------------------

    /// Pushes this head's current space to its entire `QDSet` without
    /// requesting replies. Returns the hop cost.
    pub(crate) fn push_replica(
        &mut self,
        w: &mut Net<'_, Msg>,
        head: NodeId,
        category: MsgCategory,
    ) -> u32 {
        self.push_replica_full(w, head, category, false)
    }

    pub(crate) fn push_replica_full(
        &mut self,
        w: &mut Net<'_, Msg>,
        head: NodeId,
        category: MsgCategory,
        reply_requested: bool,
    ) -> u32 {
        let Some(state) = self.head_state(head) else {
            return 0;
        };
        let msg = Msg::ReplicaPush {
            owner: head,
            owner_ip: state.ip,
            blocks: state.pool.blocks().to_vec(),
            table: state.pool.table().clone(),
            reply_requested,
        };
        let members: Vec<NodeId> = state.qd_set.keys().copied().collect();
        let mut hops = 0;
        for m in members {
            if let Ok(h) = w.unicast(head, m, category, msg.clone()) {
                hops += h;
            }
        }
        hops
    }

    /// A head receives a replica of an adjacent head's space.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_replica_push(
        &mut self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        owner: NodeId,
        owner_ip: Addr,
        blocks: Vec<AddrBlock>,
        table: AllocationTable,
        reply_requested: bool,
    ) {
        let Some(state) = self.head_state_mut(node) else {
            return;
        };
        let rep = state.quorum_space.entry(owner).or_default();
        rep.owner_ip = owner_ip;
        rep.blocks = blocks;
        rep.table.merge(&table);
        state.qd_set.insert(owner, owner_ip);
        state.suspended.remove(&owner);

        if reply_requested {
            let reply = Msg::ReplicaPush {
                owner: node,
                owner_ip: state.ip,
                blocks: state.pool.blocks().to_vec(),
                table: state.pool.table().clone(),
                reply_requested: false,
            };
            let _ = w.unicast(node, owner, MsgCategory::Configuration, reply);
        }
        // A replica overlapping our own pool means a merge left two
        // heads owning the same space — open (or feed) reconciliation
        // instead of dissolving the whole network.
        self.check_ownership_conflicts(w, node);
    }

    /// A quorum member applies a committed record to its replica (or a
    /// head applies it to its own authoritative copy, for borrows).
    pub(crate) fn on_quorum_commit(
        &mut self,
        _w: &mut Net<'_, Msg>,
        node: NodeId,
        owner: NodeId,
        addr: Addr,
        record: addrspace::AddrRecord,
        auth: u64,
    ) {
        // Hardened: the commit must carry the tag only a key-holding
        // head can compute for exactly this (owner, addr, record). A
        // reflected commit with the status flipped to vacant and a
        // superseding stamp would free a live lease in the owner's
        // authoritative table — the spoof-cfm attack's payload.
        if self.cfg.harden
            && auth != crate::auth::quorum_commit_tag(self.cfg.auth_key, owner, addr, record)
        {
            return;
        }
        let Some(state) = self.head_state_mut(node) else {
            return;
        };
        if node == owner {
            // Our own space changed remotely (a borrow commit).
            state.pool.table_mut().apply(addr, record);
            if let AddrStatus::Allocated(n) = record.status {
                state.members.insert(addr, NodeId::new(n));
            }
        } else if let Some(rep) = state.quorum_space.get_mut(&owner) {
            rep.table.apply(addr, record);
        }
    }
}
