//! Quorum-based IP address autoconfiguration for MANETs.
//!
//! A from-scratch reproduction of *"Quorum Based IP Address
//! Autoconfiguration in Mobile Ad Hoc Networks"* (Tinghui Xu and Jie Wu,
//! ICDCS 2007 workshops). The protocol is **stateful** with **partial
//! replication**: cluster heads own disjoint IP address blocks, replicate
//! each block at the adjacent cluster heads (the `QDSet`), and serialize
//! every allocation through **quorum voting** — a strict majority of
//! replicas, with a dynamic-linear-voting tiebreak — so that
//!
//! * no two nodes are ever configured with the same address,
//! * a partitioned network cannot double-allocate (only the majority side
//!   can assemble a quorum), and
//! * the space of an abruptly departed head stays usable as long as half
//!   its replicas survive.
//!
//! The crate provides [`Qbac`], an implementation of
//! [`manet_sim::Protocol`] that runs the full protocol as a
//! message-passing state machine over the [`manet_sim`] discrete-event
//! simulator: configuration of common nodes and cluster heads (§IV-B),
//! movement and departure (§IV-C), address reclamation (§IV-D), address
//! borrowing (§V-A), quorum adjustment (§V-B), and network partition and
//! merging (§V-C).
//!
//! # Quickstart
//!
//! ```
//! use manet_sim::{Point, Sim, SimDuration, WorldConfig};
//! use qbac_core::{ProtocolConfig, Qbac};
//!
//! let mut sim = Sim::new(WorldConfig::default(), Qbac::new(ProtocolConfig::default()));
//! // The first node becomes the first cluster head and owns the space.
//! let first = sim.spawn_at(Point::new(500.0, 500.0));
//! sim.run_for(SimDuration::from_secs(2));
//! // A nearby joiner is configured as a common node via quorum voting.
//! let second = sim.spawn_at(Point::new(550.0, 500.0));
//! sim.run_for(SimDuration::from_secs(2));
//!
//! let assigned = sim.protocol().assigned(sim.world());
//! assert_eq!(assigned.len(), 2);
//! assert!(sim.protocol().role(first).unwrap().is_head());
//! # let _ = second;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
pub mod auth;
mod flows;
mod inspect;
mod maintenance;
mod msg;
mod params;
mod partition;
mod protocol;
mod reclaim;
mod roles;
mod vote;
pub mod wire;

pub use inspect::DuplicateAddress;
pub use msg::{Msg, QuorumOp};
pub use params::{AllocatorChoice, ProtocolConfig, UpdatePolicy};
pub use protocol::{ProtocolStats, Qbac};
pub use roles::{CommonState, HeadState, JoinState, NodeRole, ReplicatedSpace};
