//! Address reclamation (§IV-D).
//!
//! When a cluster head vanishes without returning its space, the head
//! that detected the silence (via the §V-B probe) becomes the
//! *initiator*: it floods `ADDR_REC`, collects `REC_REP`s from the
//! vanished head's surviving members, and after a collection window
//! absorbs the space — confirmed addresses stay allocated, everything
//! else becomes vacant.

use crate::msg::Msg;
use crate::protocol::{tag, Qbac};
use crate::roles::NodeRole;
use addrspace::{Addr, AddrStatus};
use proto_io::{FlowKind, FlowStage, MsgCategory, Net, NodeId};

/// Collection state at a reclamation initiator.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReclaimState {
    /// The vanished head's address.
    pub target_ip: Addr,
    /// Members of the vanished head that reported in: `(address, node)`.
    pub confirmed: Vec<(Addr, NodeId)>,
}

impl Qbac {
    /// Starts reclaiming the space of `target`, a vanished head adjacent
    /// to `initiator`.
    pub(crate) fn start_reclamation(
        &mut self,
        w: &mut Net<'_, Msg>,
        initiator: NodeId,
        target: NodeId,
        target_ip: Addr,
    ) {
        if self.reclaims.contains_key(&target) {
            return; // already collecting
        }
        let Some(state) = self.head_state(initiator) else {
            return;
        };
        // Reclamation needs the replica; without one the space is only
        // recoverable by a future network re-initialization.
        if !state.quorum_space.contains_key(&target) {
            return;
        }
        let initiator_ip = state.ip;
        self.stats.reclamations += 1;
        self.reclaims.insert(
            target,
            ReclaimState {
                target_ip,
                confirmed: Vec::new(),
            },
        );
        self.reclaim_initiators.insert(target, initiator);
        w.flow_event(FlowKind::Reclaim, target, FlowStage::Started);
        let auth = crate::auth::addr_rec_tag(self.cfg.auth_key, initiator, target_ip);
        let _ = w.flood(
            initiator,
            MsgCategory::Reclamation,
            Msg::AddrRec {
                target,
                target_ip,
                initiator,
                initiator_ip,
                auth,
            },
        );
        let window = self.cfg.reclaim_collect;
        w.set_timer(
            initiator,
            window,
            tag::mk(tag::RECLAIM_FINALIZE, target.index()),
        );
    }

    /// Hardened rate limit: at most
    /// [`max_reclaims_per_window`](crate::ProtocolConfig) `ADDR_REC`
    /// floods accepted per initiator per receiver within the sliding
    /// window. A legitimate reclamation needs one flood; a
    /// false-reclaim attacker evicting head after head needs many.
    pub(crate) fn accept_reclaim_rate(
        &mut self,
        now: proto_io::SimTime,
        node: NodeId,
        initiator: NodeId,
    ) -> bool {
        let window = self.cfg.reclaim_rate_window;
        let max = self.cfg.max_reclaims_per_window;
        let e = self
            .reclaim_accepts
            .entry((node, initiator))
            .or_insert((now, 0));
        if now - e.0 > window {
            *e = (now, 0);
        }
        if e.1 >= max {
            return false;
        }
        e.1 += 1;
        true
    }

    /// Every node processes the `ADDR_REC` flood.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_addr_rec(
        &mut self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        target: NodeId,
        target_ip: Addr,
        initiator: NodeId,
        initiator_ip: Addr,
        auth: u64,
    ) {
        // Hardened: the flood must carry the initiator's tag over the
        // reclaimed head, and stay under the per-initiator rate limit —
        // an injected reclamation for a live lease fails the first
        // check, a flood barrage the second.
        if self.cfg.harden {
            if auth != crate::auth::addr_rec_tag(self.cfg.auth_key, initiator, target_ip) {
                return;
            }
            if !self.accept_reclaim_rate(w.now(), node, initiator) {
                return;
            }
        }
        // A falsely-suspected head objects: it is alive and reachable
        // (the flood reached it). The REP_ACK cancels the reclamation.
        if node == target {
            let _ = w.unicast(node, initiator, MsgCategory::Reclamation, Msg::RepAck);
            return;
        }
        self.reclaim_initiators.insert(target, initiator);

        match self.roles.get_mut(&node) {
            Some(NodeRole::Head(state)) => {
                // Drop the vanished head from quorum bookkeeping. The
                // initiator keeps its replica — it needs it to finalize.
                state.qd_set.remove(&target);
                state.suspended.remove(&target);
                if node != initiator {
                    state.quorum_space.remove(&target);
                }
            }
            Some(NodeRole::Common(c)) if c.configurer_ip == target_ip => {
                // A member of the vanished head: report in via the
                // closest head (§IV-D) and adopt the initiator as the new
                // configurer.
                let my_ip = c.ip;
                let network = c.network_id;
                c.configurer = initiator;
                c.configurer_ip = initiator_ip;
                c.administrator = None;
                // Hardened: never relay the report through the head being
                // reclaimed. A crashed or partitioned target can never be
                // the nearest live head anyway, but an alive-and-silent
                // Byzantine one can — and it would swallow the REC_REP,
                // vacating this member's lease at finalize time.
                let excluded = self.cfg.harden.then_some(target);
                if let Some((nearest, _)) =
                    self.nearest_head_excluding(w, node, Some(network), excluded)
                {
                    let _ = w.unicast(
                        node,
                        nearest,
                        MsgCategory::Reclamation,
                        Msg::RecRep {
                            target_ip,
                            ip: my_ip,
                            node,
                            target,
                        },
                    );
                }
            }
            _ => {}
        }
    }

    /// A head receives a `REC_REP`: forward it to the initiator (or
    /// record it, if we are the initiator). Holders of a replica also
    /// refresh their copy.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_rec_rep(
        &mut self,
        w: &mut Net<'_, Msg>,
        head: NodeId,
        _from: NodeId,
        target_ip: Addr,
        ip: Addr,
        node: NodeId,
        target: NodeId,
    ) {
        if let Some(rs) = self.reclaims.get_mut(&target) {
            if self.reclaim_initiators.get(&target) == Some(&head) {
                if !rs.confirmed.iter().any(|(a, _)| *a == ip) {
                    rs.confirmed.push((ip, node));
                }
                return;
            }
        }
        // Refresh our replica if we hold one.
        if let Some(state) = self.head_state_mut(head) {
            if let Some(rep) = state.quorum_space.get_mut(&target) {
                rep.table.set(ip, AddrStatus::Allocated(node.index()));
            }
        }
        // Forward toward the initiator (§IV-D: "it will forward the
        // message to its adjacent cluster heads until the allocation
        // information is updated").
        if let Some(&initiator) = self.reclaim_initiators.get(&target) {
            if initiator != head && w.is_alive(initiator) {
                let _ = w.unicast(
                    head,
                    initiator,
                    MsgCategory::Reclamation,
                    Msg::RecRep {
                        target_ip,
                        ip,
                        node,
                        target,
                    },
                );
            }
        }
    }

    /// The collection window closed: absorb the vanished head's space.
    pub(crate) fn on_reclaim_finalize(
        &mut self,
        w: &mut Net<'_, Msg>,
        initiator: NodeId,
        target: NodeId,
    ) {
        let Some(rs) = self.reclaims.remove(&target) else {
            return;
        };
        self.reclaim_initiators.remove(&target);
        w.flow_event(FlowKind::Reclaim, target, FlowStage::Finalized);
        let Some(state) = self.head_state_mut(initiator) else {
            return;
        };
        let Some(rep) = state.quorum_space.remove(&target) else {
            return;
        };
        state.qd_set.remove(&target);
        state.suspended.remove(&target);

        // Absorb the blocks; skip any that somehow overlap our space.
        for b in &rep.blocks {
            let _ = state.pool.absorb(*b);
        }
        // Merge the replica's last-known records, then correct them with
        // what the collection learned: confirmed members stay allocated,
        // every other previously-allocated address (including the head's
        // own) becomes vacant.
        state.pool.table_mut().merge(&rep.table);
        let previously_allocated: Vec<Addr> = rep
            .table
            .iter()
            .filter(|(a, r)| matches!(r.status, AddrStatus::Allocated(_)) && state.pool.owns(*a))
            .map(|(a, _)| a)
            .collect();
        for a in previously_allocated {
            if !rs.confirmed.iter().any(|(ca, _)| *ca == a) {
                state.pool.table_mut().set(a, AddrStatus::Vacant);
                state.members.remove(&a);
            }
        }
        if state.pool.owns(rs.target_ip)
            && matches!(
                state.pool.table().status(rs.target_ip),
                AddrStatus::Allocated(_)
            )
        {
            state.pool.table_mut().set(rs.target_ip, AddrStatus::Vacant);
        }
        for (addr, member) in &rs.confirmed {
            if state.pool.owns(*addr) {
                state
                    .pool
                    .table_mut()
                    .set(*addr, AddrStatus::Allocated(member.index()));
            }
            state.members.insert(*addr, *member);
        }
        // Foreign stamps are not comparable with ours: re-assert our own
        // address (and pre-existing members) against any merged record.
        let own_ip = state.ip;
        if state.pool.owns(own_ip) {
            state
                .pool
                .table_mut()
                .set(own_ip, AddrStatus::Allocated(initiator.index()));
        }

        // Replicate the enlarged space.
        self.push_replica(w, initiator, MsgCategory::Reclamation);
    }
}
