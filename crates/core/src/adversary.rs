//! The Byzantine adversary plane.
//!
//! A fault plan can designate *attacker nodes*
//! ([`manet_sim::faults::AttackRole`], grammar `attack <node> <kind> at
//! <time>`). An attacker joins the network honestly, acquires an
//! insider identity (an address, a network ID, often a seat in
//! somebody's `QDSet`), and from its start time on is diverted here by
//! the [`Protocol`](manet_sim::Protocol) dispatch instead of running
//! the honest handlers. Four roles, one per way the protocol can be
//! lied to:
//!
//! * **squat** — promote a rival head's free addresses into a private
//!   grant queue and hand them to joiners by unsolicited `COM_CFG`,
//!   without ever assembling a quorum. The victim's table never learns
//!   of the squatted grants, so its own next allocations collide with
//!   them: duplicate addresses among honest nodes.
//! * **spoof-cfm** — stay honest except at the voting booth: answer
//!   every `QUORUM_CLT` with a forged grant, and cast additional
//!   grants *in the names of the allocator's other electorate members*
//!   (the simulator's unicast takes the claimed sender, modelling
//!   source-address spoofing). Votes that should fail — stale replicas
//!   after a heal, borrow checks against the owner's authoritative
//!   copy — wrongly carry.
//! * **false-reclaim** — flood a forged `ADDR_REC` naming a live,
//!   well-connected head. Honest heads evict the victim from their
//!   quorum bookkeeping, its members defect to the attacker, and the
//!   victim's live leases go into the attacker's grant queue: stolen
//!   leases re-granted to joiners are instant duplicates.
//! * **replay-claim** — capture every `OWN_CLAIM` legitimately
//!   received (also before the start time, while still undercover),
//!   refuse to cede, and replay the captured credential — claimant
//!   address and stamp kept verbatim — at every other head after a
//!   merge, amplified to cover each victim's own blocks (the attacker
//!   knows them from its replica bookkeeping). Unhardened victims that
//!   lose the tiebreak to the stale claimant carve their pools and
//!   mail the drained live leases to the attacker, which re-grants
//!   them.
//!
//! The adversary is deliberately *omniscient*: it reads the global
//! role registry to pick victims and electorates, the strongest
//! deterministic attacker the simulation can express. It is **not**
//! omnipotent — it holds no scenario key, so every forged tag is
//! computed under [`auth::ADVERSARY_TAINT`](crate::auth) and fails
//! verification at hardened receivers.
//!
//! Every attack action bumps its counter on
//! [`manet_sim::FaultCounters`] (`squats` for unquorumed grants,
//! `spoofed_cfms`, `false_reclaims`, `replayed_claims`) and emits an
//! [`FlowKind::Attack`](manet_sim::FlowKind) span, so manifests and
//! `repro attacks` can quantify the degradation.

use crate::auth;
use crate::msg::Msg;
use crate::protocol::{tag, Qbac};
use crate::roles::NodeRole;
use addrspace::{Addr, AddrBlock, AddrRecord, AddrStatus};
use proto_io::{AttackKind, FlowKind, FlowStage, MsgCategory, Net, NodeId};
use quorum::VersionStamp;
use std::collections::{HashMap, HashSet, VecDeque};

/// How many squatted grants an attacker pushes per hello tick.
const GRANTS_PER_TICK: usize = 2;
/// How deep the squat queue digs into the victim's free space.
const SQUAT_QUEUE: usize = 8;

/// An `OWN_CLAIM` captured by a replay-claim attacker.
#[derive(Debug, Clone)]
pub(crate) struct CapturedClaim {
    claimant_ip: Addr,
    blocks: Vec<AddrBlock>,
    claim_stamp: u64,
}

/// Mutable state of every attacker node, keyed by attacker. Empty (and
/// untouched) unless the fault plan designates attackers.
#[derive(Debug, Default)]
pub(crate) struct AdversaryState {
    /// Addresses queued for unquorumed granting, per attacker.
    grant_queues: HashMap<NodeId, VecDeque<Addr>>,
    /// Attackers whose one-shot setup action (victim selection, flood)
    /// already ran.
    engaged: HashSet<NodeId>,
    /// Captured ownership claims, per replay-claim attacker.
    captured: HashMap<NodeId, Vec<CapturedClaim>>,
    /// `(attacker, victim, claim index, amplified)` replays already
    /// fired. The amplified form (blocks widened to the victim's own
    /// replica) fires once per victim on top of the verbatim one: the
    /// replica may only become known ticks after the first replay.
    replays_sent: HashSet<(NodeId, NodeId, usize, bool)>,
}

impl Qbac {
    /// The attacker's insider identity `(ip, network_id)`, if it has
    /// finished its honest join.
    fn attacker_identity(&self, node: NodeId) -> Option<(Addr, Addr)> {
        match self.roles.get(&node) {
            Some(NodeRole::Common(c)) => Some((c.ip, c.network_id)),
            Some(NodeRole::Head(h)) => Some((h.ip, h.network_id)),
            _ => None,
        }
    }

    /// The key attackers forge tags with: outside the trust domain.
    fn tainted_key(&self) -> u64 {
        self.cfg.auth_key ^ auth::ADVERSARY_TAINT
    }

    /// Honest, live cluster heads (victim candidates), excluding every
    /// designated attacker, sorted by id for determinism.
    fn honest_heads(&self, w: &Net<'_, Msg>) -> Vec<NodeId> {
        let mut heads: Vec<NodeId> = self
            .roles
            .iter()
            .filter(|(n, r)| r.is_head() && w.is_alive(**n) && w.attack_assigned(**n).is_none())
            .map(|(n, _)| *n)
            .collect();
        heads.sort_unstable();
        heads
    }

    /// Live, still-unconfigured nodes — the squatted-grant targets.
    fn grant_targets(&self, w: &Net<'_, Msg>) -> Vec<NodeId> {
        let mut t: Vec<NodeId> = self
            .roles
            .iter()
            .filter(|(n, r)| {
                matches!(r, NodeRole::Unconfigured(_))
                    && w.is_alive(**n)
                    && w.attack_assigned(**n).is_none()
            })
            .map(|(n, _)| *n)
            .collect();
        t.sort_unstable();
        t
    }

    fn attack_span(w: &mut Net<'_, Msg>, node: NodeId) {
        w.flow_event(FlowKind::Attack, node, FlowStage::Started);
        w.flow_event(FlowKind::Attack, node, FlowStage::Finalized);
    }

    // ------------------------------------------------------------------
    // Dispatch diversion
    // ------------------------------------------------------------------

    /// Handles a message delivered to an active attacker. Returns
    /// `false` to fall through to honest processing (the attacker is
    /// still acquiring its identity, or the role leaves this message
    /// honest).
    pub(crate) fn adversary_on_message(
        &mut self,
        w: &mut Net<'_, Msg>,
        to: NodeId,
        from: NodeId,
        msg: &Msg,
        kind: AttackKind,
    ) -> bool {
        match kind {
            // The spoofer keeps its honest persona — a trusted QDSet
            // member — and lies only in the quorum-confirmation traffic:
            // forged vote slates, and poisoned reflections of the
            // commits it is trusted to replicate.
            AttackKind::SpoofCfm => match msg {
                Msg::QuorumClt { seq, .. } => {
                    self.spoof_votes(w, to, from, *seq);
                    true
                }
                Msg::QuorumCommit {
                    owner,
                    addr,
                    record,
                    ..
                } if *owner != to => {
                    // Reflect a forged commit at the owner: same address,
                    // status flipped to vacant, stamp superseding the
                    // authentic one. An unhardened owner applies it to
                    // its authoritative table and frees the live lease it
                    // just granted. Fall through so the honest replica
                    // update still runs (the spoofer stays undercover).
                    self.reflect_poisoned_commit(w, to, *owner, *addr, *record);
                    false
                }
                _ => false,
            },
            AttackKind::Squat | AttackKind::FalseReclaim | AttackKind::ReplayClaim => {
                if self.attacker_identity(to).is_none() {
                    return false; // join honestly first
                }
                match msg {
                    // A requestor found us: grant from the rogue queue.
                    Msg::ComReq => {
                        self.rogue_grant(w, to, from);
                        true
                    }
                    Msg::OwnClaim {
                        claimant_ip,
                        blocks,
                        claim_stamp,
                        ..
                    } if kind == AttackKind::ReplayClaim => {
                        // Capture, and refuse to cede (no OWN_GRANT).
                        self.capture_claim(to, *claimant_ip, blocks.clone(), *claim_stamp);
                        true
                    }
                    Msg::OwnGrant { records, .. } if kind == AttackKind::ReplayClaim => {
                        // A replayed claim paid out: harvest the live
                        // leases for re-granting.
                        let q = self.adversary.grant_queues.entry(to).or_default();
                        for (a, r) in records {
                            if !r.status.is_available() {
                                q.push_back(*a);
                            }
                        }
                        true
                    }
                    // Byzantine silence to everything else: probes go
                    // unanswered, replicas are not returned, claims are
                    // not honored.
                    _ => true,
                }
            }
        }
    }

    /// Handles a timer at an active attacker. The hello tick becomes
    /// the adversary action beat; every other timer lapses.
    pub(crate) fn adversary_on_timer(
        &mut self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        t: u64,
        kind: AttackKind,
    ) -> bool {
        if kind == AttackKind::SpoofCfm {
            return false; // honest timers; the lies live in the votes
        }
        if self.attacker_identity(node).is_none() {
            return false; // keep the honest join machinery running
        }
        if tag::kind(t) == tag::HELLO {
            self.adversary_tick(w, node, kind);
            let interval = self.cfg.hello_interval;
            w.set_timer(node, interval, tag::mk(tag::HELLO, 0));
        }
        true
    }

    /// Pre-start capture hook: a *designated* replay-claim attacker
    /// records every `OWN_CLAIM` it receives while still honest. The
    /// claim is then also processed honestly by the caller.
    pub(crate) fn adversary_capture_claim(&mut self, w: &Net<'_, Msg>, to: NodeId, msg: &Msg) {
        if w.attack_assigned(to) != Some(AttackKind::ReplayClaim) {
            return;
        }
        if let Msg::OwnClaim {
            claimant_ip,
            blocks,
            claim_stamp,
            ..
        } = msg
        {
            self.capture_claim(to, *claimant_ip, blocks.clone(), *claim_stamp);
        }
    }

    fn capture_claim(
        &mut self,
        node: NodeId,
        claimant_ip: Addr,
        blocks: Vec<AddrBlock>,
        stamp: u64,
    ) {
        let caps = self.adversary.captured.entry(node).or_default();
        if !caps
            .iter()
            .any(|c| c.claimant_ip == claimant_ip && c.claim_stamp == stamp)
        {
            caps.push(CapturedClaim {
                claimant_ip,
                blocks,
                claim_stamp: stamp,
            });
        }
    }

    // ------------------------------------------------------------------
    // Per-tick attack actions
    // ------------------------------------------------------------------

    fn adversary_tick(&mut self, w: &mut Net<'_, Msg>, node: NodeId, kind: AttackKind) {
        match kind {
            AttackKind::Squat => {
                if self.adversary.engaged.insert(node) {
                    self.setup_squat(w, node);
                }
                self.drain_grants(w, node);
            }
            AttackKind::FalseReclaim => {
                if self.adversary.engaged.insert(node) {
                    self.setup_false_reclaim(w, node);
                }
                self.drain_grants(w, node);
            }
            AttackKind::ReplayClaim => {
                self.replay_captured(w, node);
                self.drain_grants(w, node);
            }
            AttackKind::SpoofCfm => {}
        }
    }

    /// Squat setup: target the busiest honest allocator and queue its
    /// next allocations — the same addresses, in the same first-free
    /// order the victim will propose them.
    fn setup_squat(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let victim = self.honest_heads(w).into_iter().max_by_key(|h| {
            (
                self.head_state(*h).map_or(0, |s| s.pool.free_count()),
                std::cmp::Reverse(*h),
            )
        });
        let Some(victim) = victim else { return };
        let Some(vs) = self.head_state(victim) else {
            return;
        };
        let victim_ip = vs.ip;
        let mut avail: Vec<Addr> = vs
            .pool
            .blocks()
            .iter()
            .flat_map(|b| b.iter())
            .filter(|a| vs.pool.table().record(*a).status.is_available())
            .collect();
        avail.sort_unstable();
        // First-free order starts at the victim's own address (§IV-B).
        let split = avail.partition_point(|a| *a < victim_ip);
        let queue: VecDeque<Addr> = avail[split..]
            .iter()
            .chain(avail[..split].iter())
            .copied()
            .take(SQUAT_QUEUE)
            .collect();
        self.adversary.grant_queues.insert(node, queue);
    }

    /// False-reclaim setup: flood a forged `ADDR_REC` against the
    /// honest head with the most live leases, and queue those leases
    /// for stealing.
    fn setup_false_reclaim(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let Some((my_ip, _)) = self.attacker_identity(node) else {
            return;
        };
        let victim = self.honest_heads(w).into_iter().max_by_key(|h| {
            (
                self.head_state(*h).map_or(0, |s| s.members.len()),
                std::cmp::Reverse(*h),
            )
        });
        let Some(victim) = victim else { return };
        let Some(vs) = self.head_state(victim) else {
            return;
        };
        let victim_ip = vs.ip;
        let mut leases: Vec<Addr> = vs.members.keys().copied().collect();
        leases.sort_unstable();
        self.adversary
            .grant_queues
            .insert(node, leases.into_iter().collect());

        // The forged tag is computed under the tainted key: hardened
        // receivers drop the flood, unhardened ones evict the victim.
        let forged = auth::addr_rec_tag(self.tainted_key(), node, victim_ip);
        let _ = w.flood(
            node,
            MsgCategory::Reclamation,
            Msg::AddrRec {
                target: victim,
                target_ip: victim_ip,
                initiator: node,
                initiator_ip: my_ip,
                auth: forged,
            },
        );
        w.metrics_mut().faults_mut().false_reclaims += 1;
        Self::attack_span(w, node);
    }

    /// Replays every captured claim credential at every honest head not
    /// yet hit. The claimant address and stamp are kept verbatim (the
    /// replay signature a hardened stamp window catches); the claimed
    /// region is amplified to the victim's own blocks, read from the
    /// attacker's replica of it, so a victim that loses the tiebreak to
    /// the stale claimant cedes everything it owns.
    fn replay_captured(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let caps = match self.adversary.captured.get(&node) {
            Some(c) if !c.is_empty() => c.clone(),
            _ => return,
        };
        let victims: Vec<(NodeId, Option<Vec<AddrBlock>>)> = self
            .honest_heads(w)
            .into_iter()
            .map(|v| {
                let replica = self
                    .head_state(node)
                    .and_then(|s| s.quorum_space.get(&v))
                    .map(|rep| rep.blocks.clone())
                    .filter(|b| !b.is_empty());
                (v, replica)
            })
            .collect();
        let tainted = self.tainted_key();
        for (idx, c) in caps.iter().enumerate() {
            for (v, replica) in &victims {
                let amplified = replica.is_some();
                if !self
                    .adversary
                    .replays_sent
                    .insert((node, *v, idx, amplified))
                {
                    continue;
                }
                let blocks = replica.clone().unwrap_or_else(|| c.blocks.clone());
                let forged = auth::own_claim_tag(tainted, c.claimant_ip, *v, c.claim_stamp);
                if w.unicast(
                    node,
                    *v,
                    MsgCategory::Maintenance,
                    Msg::OwnClaim {
                        claimant_ip: c.claimant_ip,
                        blocks,
                        claim_stamp: c.claim_stamp,
                        auth: forged,
                    },
                )
                .is_ok()
                {
                    w.metrics_mut().faults_mut().replayed_claims += 1;
                    Self::attack_span(w, node);
                }
            }
        }
    }

    /// Hands out up to [`GRANTS_PER_TICK`] queued addresses to live
    /// unconfigured nodes by unsolicited, unquorumed `COM_CFG`.
    fn drain_grants(&mut self, w: &mut Net<'_, Msg>, node: NodeId) {
        let Some((my_ip, network_id)) = self.attacker_identity(node) else {
            return;
        };
        let targets = self.grant_targets(w);
        for target in targets.into_iter().take(GRANTS_PER_TICK) {
            let Some(addr) = self
                .adversary
                .grant_queues
                .get_mut(&node)
                .and_then(VecDeque::pop_front)
            else {
                return;
            };
            self.send_rogue_cfg(w, node, target, addr, my_ip, network_id);
        }
    }

    /// A requestor asked the attacker directly: same rogue grant.
    fn rogue_grant(&mut self, w: &mut Net<'_, Msg>, node: NodeId, requestor: NodeId) {
        let Some((my_ip, network_id)) = self.attacker_identity(node) else {
            return;
        };
        let Some(addr) = self
            .adversary
            .grant_queues
            .get_mut(&node)
            .and_then(VecDeque::pop_front)
        else {
            return; // silence; the requestor's retry finds a real head
        };
        self.send_rogue_cfg(w, node, requestor, addr, my_ip, network_id);
    }

    fn send_rogue_cfg(
        &mut self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        target: NodeId,
        addr: Addr,
        my_ip: Addr,
        network_id: Addr,
    ) {
        let forged = auth::com_cfg_tag(self.tainted_key(), my_ip, addr, target);
        if w.unicast(
            node,
            target,
            MsgCategory::Configuration,
            Msg::ComCfg {
                ip: addr,
                configurer: my_ip,
                network_id,
                spent_hops: 0,
                auth: forged,
            },
        )
        .is_ok()
        {
            w.metrics_mut().faults_mut().squats += 1;
            Self::attack_span(w, node);
        }
    }

    /// Forges a full slate of grants for one `QUORUM_CLT`: our own vote
    /// plus one in the name of every other member of the allocator's
    /// electorate (source-address spoofing at the network layer).
    fn spoof_votes(&mut self, w: &mut Net<'_, Msg>, node: NodeId, allocator: NodeId, seq: u64) {
        let mut voters = vec![node];
        if let Some(head) = self.head_state(allocator) {
            for m in head.electorate() {
                if m != node && w.is_alive(m) {
                    voters.push(m);
                }
            }
        }
        let tainted = self.tainted_key();
        let mut forged = 0u64;
        for voter in voters {
            let auth = auth::quorum_cfm_tag(tainted, voter, seq, true);
            if w.unicast(
                voter,
                allocator,
                MsgCategory::Configuration,
                Msg::QuorumCfm {
                    seq,
                    grant: true,
                    stamp: VersionStamp::ZERO,
                    auth,
                },
            )
            .is_ok()
            {
                forged += 1;
            }
        }
        if forged > 0 {
            w.metrics_mut().faults_mut().spoofed_cfms += forged;
            Self::attack_span(w, node);
        }
    }

    /// Reflects a poisoned `QUORUM_COMMIT` back at the space's owner:
    /// the record the spoofer was just trusted to replicate, with the
    /// status flipped to vacant and the stamp bumped past the authentic
    /// one so the freshest-copy rule at the owner prefers it.
    fn reflect_poisoned_commit(
        &mut self,
        w: &mut Net<'_, Msg>,
        node: NodeId,
        owner: NodeId,
        addr: Addr,
        record: AddrRecord,
    ) {
        let poisoned = AddrRecord {
            status: AddrStatus::Vacant,
            stamp: VersionStamp::new(record.stamp.get().wrapping_add(1)),
        };
        let auth = auth::quorum_commit_tag(self.tainted_key(), owner, addr, poisoned);
        if w.unicast(
            node,
            owner,
            MsgCategory::Configuration,
            Msg::QuorumCommit {
                owner,
                addr,
                record: poisoned,
                auth,
            },
        )
        .is_ok()
        {
            w.metrics_mut().faults_mut().spoofed_cfms += 1;
            Self::attack_span(w, node);
        }
    }
}
