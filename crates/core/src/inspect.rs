//! Inspection and auditing helpers for tests and the experiment harness.

use crate::msg::Msg;
use crate::protocol::Qbac;
use crate::roles::{HeadState, NodeRole};
use addrspace::{Addr, PoolView};
use proto_io::{NetBackend, NodeId};
use std::collections::HashMap;

/// A duplicate-address violation found by [`Qbac::audit_unique`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateAddress {
    /// The address assigned twice.
    pub addr: Addr,
    /// First holder.
    pub a: NodeId,
    /// Second holder.
    pub b: NodeId,
}

impl Qbac {
    /// Addresses of every alive configured node.
    #[must_use]
    pub fn assigned<B: NetBackend<Msg> + ?Sized>(&self, w: &B) -> Vec<(NodeId, Addr)> {
        let mut v: Vec<(NodeId, Addr)> = self
            .roles_iter()
            .filter(|(n, _)| w.is_alive(*n))
            .filter_map(|(n, r)| r.ip().map(|ip| (n, ip)))
            .collect();
        v.sort_unstable();
        v
    }

    /// Alive cluster heads.
    #[must_use]
    pub fn heads<B: NetBackend<Msg> + ?Sized>(&self, w: &B) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .roles_iter()
            .filter(|(n, r)| w.is_alive(*n) && r.is_head())
            .map(|(n, _)| n)
            .collect();
        v.sort_unstable();
        v
    }

    /// Alive configured common nodes.
    #[must_use]
    pub fn common_nodes<B: NetBackend<Msg> + ?Sized>(&self, w: &B) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .roles_iter()
            .filter(|(n, r)| w.is_alive(*n) && matches!(r, NodeRole::Common(_)))
            .map(|(n, _)| n)
            .collect();
        v.sort_unstable();
        v
    }

    /// Read-only access to a head's full state (for the harness's
    /// Figure 12/13 measurements).
    #[must_use]
    pub fn head(&self, node: NodeId) -> Option<&HeadState> {
        self.head_state(node)
    }

    /// `|QDSet|` of every alive head.
    #[must_use]
    pub fn qdset_sizes<B: NetBackend<Msg> + ?Sized>(&self, w: &B) -> Vec<usize> {
        self.heads(w)
            .into_iter()
            .filter_map(|h| self.head_state(h).map(|s| s.qd_set.len()))
            .collect()
    }

    /// For every alive head, the ratio of its extended space (own +
    /// replicated) to its own space — the Figure 12 quantity.
    #[must_use]
    pub fn extension_ratios<B: NetBackend<Msg> + ?Sized>(&self, w: &B) -> Vec<f64> {
        self.heads(w)
            .into_iter()
            .filter_map(|h| self.head_state(h))
            .filter(|s| s.pool.total_len() > 0)
            .map(|s| s.extended_space() as f64 / s.pool.total_len() as f64)
            .collect()
    }

    /// Checks the core safety property: within one connected component
    /// and one network, no two alive configured nodes share an address.
    ///
    /// # Errors
    ///
    /// Returns all violations found.
    pub fn audit_unique<B: NetBackend<Msg> + ?Sized>(
        &self,
        w: &mut B,
    ) -> Result<(), Vec<DuplicateAddress>> {
        let mut seen: HashMap<(usize, Addr), NodeId> = HashMap::new();
        let mut dups = Vec::new();
        let components = w.components();
        let comp_of: HashMap<NodeId, usize> = components
            .iter()
            .enumerate()
            .flat_map(|(i, c)| c.iter().map(move |n| (*n, i)))
            .collect();
        for (n, ip) in self.assigned(w) {
            let Some(&comp) = comp_of.get(&n) else {
                continue;
            };
            match seen.insert((comp, ip), n) {
                Some(prev) if prev != n => dups.push(DuplicateAddress {
                    addr: ip,
                    a: prev,
                    b: n,
                }),
                _ => {}
            }
        }
        if dups.is_empty() {
            Ok(())
        } else {
            Err(dups)
        }
    }

    /// Address-leak audit for chaos studies: of the member records held
    /// by alive heads, how many point at nodes that are no longer alive?
    /// Those addresses stay blocked until reclamation frees them.
    ///
    /// Returns `(leaked, tracked)` record counts.
    #[must_use]
    pub fn leak_audit<B: NetBackend<Msg> + ?Sized>(&self, w: &B) -> (u64, u64) {
        let mut leaked = 0;
        let mut tracked = 0;
        for h in self.heads(w) {
            let Some(state) = self.head_state(h) else {
                continue;
            };
            for holder in state.members.values() {
                tracked += 1;
                if !w.is_alive(*holder) {
                    leaked += 1;
                }
            }
        }
        (leaked, tracked)
    }

    /// For Figure 13: the vanished heads whose state survived. A departed
    /// head's state is preserved if at least half of its `QDSet` is still
    /// alive ("as long as half of the cluster heads in its QDSet exist
    /// ... at least one quorum remains").
    ///
    /// Returns `(preserved, lost)` counts over the given set of heads
    /// that left abruptly.
    #[must_use]
    pub fn preservation_audit<B: NetBackend<Msg> + ?Sized>(
        &self,
        w: &B,
        departed_heads: &[NodeId],
    ) -> (usize, usize) {
        let mut preserved = 0;
        let mut lost = 0;
        for &h in departed_heads {
            let Some(state) = self.head_state(h) else {
                continue; // was not a head when it left
            };
            if state.qd_set.is_empty() {
                lost += 1;
                continue;
            }
            let alive = state.qd_set.keys().filter(|m| w.is_alive(**m)).count();
            // Ceiling half: a quorum (majority with the allocator's copy
            // gone) survives when at least half the replicas remain.
            if 2 * alive >= state.qd_set.len() {
                preserved += 1;
            } else {
                lost += 1;
            }
        }
        (preserved, lost)
    }

    /// Accounting snapshots of every alive head's `IPSpace`, for the
    /// conformance oracle's leak-freedom invariant.
    #[must_use]
    pub fn pool_views<B: NetBackend<Msg> + ?Sized>(&self, w: &B) -> Vec<(NodeId, PoolView)> {
        self.heads(w)
            .into_iter()
            .filter_map(|h| self.head_state(h).map(|s| (h, s.pool.view())))
            .collect()
    }

    /// Every version-stamped allocation record visible to alive heads —
    /// their own tables plus the `QuorumSpace` replicas — keyed by
    /// `(holder, owner, addr)`. The conformance oracle checks that each
    /// key's stamp never decreases between simulator events (§II-C:
    /// stamps are "incrementally increased each time the copy is
    /// updated").
    #[must_use]
    pub fn stamp_views<B: NetBackend<Msg> + ?Sized>(
        &self,
        w: &B,
    ) -> Vec<((NodeId, NodeId, Addr), u64)> {
        let mut v = Vec::new();
        for h in self.heads(w) {
            let Some(state) = self.head_state(h) else {
                continue;
            };
            for (addr, rec) in state.pool.table().iter() {
                v.push(((h, h, addr), rec.stamp.get()));
            }
            for (owner, rs) in &state.quorum_space {
                for (addr, rec) in rs.table.iter() {
                    v.push(((h, *owner, addr), rec.stamp.get()));
                }
            }
        }
        v
    }

    fn roles_iter(&self) -> impl Iterator<Item = (NodeId, &NodeRole)> {
        self.roles.iter().map(|(n, r)| (*n, r))
    }
}
