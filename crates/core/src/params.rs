use addrspace::{Addr, AddrBlock};
use proto_io::SimDuration;

/// How a common node reports its location as it moves (§IV-C.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdatePolicy {
    /// Periodic `UPDATE_LOC` whenever the node drifts more than three hops
    /// from its configurer/administrator (the paper's default).
    #[default]
    Periodic,
    /// The "upon-leave update" alternative: no location updates; the node
    /// only sends `RETURN_ADDR` to the nearest cluster head on departure.
    UponLeave,
}

/// How an entering node picks its allocator among candidate cluster heads
/// (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocatorChoice {
    /// The nearest cluster head (fewest hops).
    #[default]
    Nearest,
    /// The paper's alternative for even address distribution: the
    /// candidate with the largest available IP block.
    LargestBlock,
}

/// Tunable parameters of the quorum-based autoconfiguration protocol.
///
/// Defaults follow the paper where it gives values and otherwise use
/// conservative settings consistent with its simulation setup.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// The network's total address space, owned by the first cluster head.
    pub space: AddrBlock,
    /// First-node retry period `T_e`: how long the very first node waits
    /// for a response to its broadcast before retrying.
    pub te: SimDuration,
    /// First-node retry threshold `Max_r`.
    pub max_r: u32,
    /// Quorum-collection patience `T_d`: after this, unresponsive `QDSet`
    /// members are excluded (quorum shrink) and probed with `REP_REQ`.
    pub td: SimDuration,
    /// Liveness-probe patience `T_r`: a `REP_REQ` unanswered for this long
    /// is retried; after [`ProtocolConfig::probe_attempts`] silent rounds
    /// the cluster head is declared gone and reclaimed.
    pub tr: SimDuration,
    /// How many `REP_REQ` rounds a silent head gets before reclamation.
    pub probe_attempts: u64,
    /// Interval between hello beacons.
    pub hello_interval: SimDuration,
    /// Interval at which common nodes check their distance to their
    /// configurer/administrator (periodic update policy).
    pub loc_update_interval: SimDuration,
    /// Location-update policy.
    pub update_policy: UpdatePolicy,
    /// Allocator-selection policy.
    pub allocator_choice: AllocatorChoice,
    /// Replication floor: cluster heads grow their quorum set when
    /// `|QDSet|` drops below this (§V-B gives 3).
    pub min_qdset: usize,
    /// Enables address borrowing from `QuorumSpace` (§V-A). Disabling it
    /// is the ablation: depleted heads must agent-forward or reject.
    pub enable_borrowing: bool,
    /// How long a reclamation initiator collects `REC_REP` responses
    /// before finalizing.
    pub reclaim_collect: SimDuration,
    /// How long an entering node that found no allocator waits before
    /// retrying its join.
    pub join_retry: SimDuration,
    /// How many times an entering node retries before giving up.
    pub join_attempts: u32,
    /// Enables the Byzantine-hardened variant: origin-authentication
    /// checks on `COM_CFG`/`QUORUM_CFM`/`ADDR_REC`/`OWN_CLAIM`,
    /// stamp-window replay rejection on ownership claims, and
    /// reclamation rate-limiting. Off by default — the paper's protocol
    /// trusts every member. Honest *senders* always stamp and tag their
    /// messages (pure arithmetic), so this flag changes only what
    /// receivers verify and never perturbs honest-path scheduling.
    pub harden: bool,
    /// Scenario-wide authentication key for the HMAC-shaped tags
    /// ([`crate::auth`]). Models the deployment credential honest
    /// members share; fault-plan attackers tag under a tainted key.
    pub auth_key: u64,
    /// Hardened only: sliding window over which a receiver counts
    /// accepted `ADDR_REC` floods per initiator.
    pub reclaim_rate_window: SimDuration,
    /// Hardened only: `ADDR_REC` floods accepted from one initiator
    /// within [`ProtocolConfig::reclaim_rate_window`] before further
    /// floods from it are ignored. One legitimate reclamation needs a
    /// single flood; a false-reclaim attacker needs many.
    pub max_reclaims_per_window: u32,
}

impl ProtocolConfig {
    /// Retry pause before join attempt `attempts + 1`: exponential
    /// backoff doubling every other failed attempt, capped at 8×
    /// [`ProtocolConfig::join_retry`]. A joiner facing total reply loss
    /// keeps probing forever, but without saturating the channel.
    #[must_use]
    pub fn join_backoff(&self, attempts: u32) -> SimDuration {
        let shift = (attempts / 2).min(3);
        self.join_retry * (1u64 << shift)
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            // 10.0.0.0 with 2^16 addresses: plenty for 200 nodes while
            // keeping block arithmetic visible in traces.
            space: AddrBlock::new(Addr::new(0x0A00_0000), 1 << 16).expect("static block is valid"),
            te: SimDuration::from_millis(200),
            max_r: 3,
            td: SimDuration::from_millis(300),
            tr: SimDuration::from_secs(1),
            probe_attempts: 3,
            hello_interval: SimDuration::from_secs(1),
            loc_update_interval: SimDuration::from_secs(2),
            update_policy: UpdatePolicy::Periodic,
            allocator_choice: AllocatorChoice::Nearest,
            min_qdset: 3,
            enable_borrowing: true,
            reclaim_collect: SimDuration::from_millis(500),
            join_retry: SimDuration::from_millis(600),
            join_attempts: 12,
            harden: false,
            auth_key: crate::auth::SCENARIO_AUTH_KEY,
            reclaim_rate_window: SimDuration::from_secs(5),
            max_reclaims_per_window: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ProtocolConfig::default();
        assert_eq!(c.space.len(), 1 << 16);
        assert_eq!(c.max_r, 3);
        assert_eq!(c.min_qdset, 3);
        assert!(c.tr > c.td);
        assert_eq!(c.update_policy, UpdatePolicy::Periodic);
        assert_eq!(c.allocator_choice, AllocatorChoice::Nearest);
        assert!(!c.harden, "paper protocol is unhardened by default");
        assert_eq!(c.auth_key, crate::auth::SCENARIO_AUTH_KEY);
        assert!(c.max_reclaims_per_window >= 1);
    }
}
