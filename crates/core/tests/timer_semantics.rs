//! Timer semantics at the sans-io boundary.
//!
//! The `ProtocolCore` contract leaves timers almost entirely to the
//! backend: `set_timer` returns a fresh [`TimerId`], `cancel_timer` is
//! "no-op if already fired or cancelled". These tests pin the exact
//! semantics every backend must honour, because QBAC's reclamation and
//! partition logic depends on them:
//!
//! * **no coalescing** — two `SetTimer`s with identical `(node, delay,
//!   tag)` are two independent timers with distinct ids; each fires, and
//!   cancelling one never cancels its twin;
//! * **cancel-after-fire is inert** — cancelling an id whose timer has
//!   already fired must not suppress any later timer (ids are never
//!   reused);
//! * **zero-delay timers fire** — `set_timer(.., ZERO, ..)` schedules
//!   for *now* but still goes through the queue: the handler that armed
//!   it returns before the timer input arrives (no reentrancy);
//! * **cancel-before-fire wins races at the same instant** — a cancel
//!   issued while handling an earlier event at time T suppresses a
//!   timer due at that same T.
//!
//! The table runs each script through the simulator backend and checks
//! the fired-tag sequence; a separate differential test (in `harness`)
//! proves the mesh transport preserves the same observable order.

use manet_sim::{Net, NodeId, Point, Protocol, Sim, SimDuration, TimerId, WorldConfig};

/// One scripted timer operation, executed in order from `on_join`.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Arm a timer; remember its id at the next free slot.
    Set { delay_ms: u64, tag: u64 },
    /// Cancel the id remembered by the `Set` at `slot` (0-based).
    Cancel { slot: usize },
}

/// Executes a script of timer ops at join time and records firings.
#[derive(Default)]
struct Scripted {
    script: Vec<Op>,
    ids: Vec<TimerId>,
    /// `(tag, fired_at_ms)` in firing order.
    fired: Vec<(u64, u64)>,
    /// Ops to run (once) from inside the first timer handler.
    on_first_fire: Vec<Op>,
    in_handler_ran: bool,
}

impl Scripted {
    fn new(script: &[Op]) -> Self {
        Scripted {
            script: script.to_vec(),
            ..Scripted::default()
        }
    }

    fn run_ops(&mut self, w: &mut Net<'_, ()>, node: NodeId, which: usize) {
        let ops = if which == 0 {
            self.script.clone()
        } else {
            self.on_first_fire.clone()
        };
        for op in ops {
            match op {
                Op::Set { delay_ms, tag } => {
                    let id = w.set_timer(node, SimDuration::from_millis(delay_ms), tag);
                    self.ids.push(id);
                }
                Op::Cancel { slot } => {
                    let id = self.ids[slot];
                    w.cancel_timer(id);
                }
            }
        }
    }
}

impl Protocol for Scripted {
    type Msg = ();

    fn on_join(&mut self, w: &mut Net<'_, ()>, node: NodeId) {
        self.run_ops(w, node, 0);
    }

    fn on_message(&mut self, _w: &mut Net<'_, ()>, _to: NodeId, _from: NodeId, _msg: ()) {}

    fn on_timer(&mut self, w: &mut Net<'_, ()>, node: NodeId, tag: u64) {
        let at_ms = w.now().as_micros() / 1000;
        self.fired.push((tag, at_ms));
        if !self.in_handler_ran && !self.on_first_fire.is_empty() {
            self.in_handler_ran = true;
            self.run_ops(w, node, 1);
        }
    }
}

fn still_config() -> WorldConfig {
    WorldConfig {
        speed: 0.0,
        ..WorldConfig::default()
    }
}

/// Runs one script and returns the fired `(tag, at_ms)` sequence.
fn run_script(script: &[Op]) -> Vec<(u64, u64)> {
    run_protocol(Scripted::new(script))
}

fn run_protocol(protocol: Scripted) -> Vec<(u64, u64)> {
    let mut sim = Sim::new(still_config(), protocol);
    sim.spawn_at(Point::new(0.0, 0.0));
    sim.run_for(SimDuration::from_secs(2));
    sim.protocol().fired.clone()
}

/// The join event fires at this offset (arrival scheduling), so a timer
/// armed at join with delay D fires at `JOIN_MS + D`.
fn join_ms() -> u64 {
    let fired = run_script(&[Op::Set {
        delay_ms: 0,
        tag: 99,
    }]);
    assert_eq!(fired.len(), 1, "probe timer must fire exactly once");
    fired[0].1
}

// ---------------------------------------------------------------------
// The table
// ---------------------------------------------------------------------

#[test]
fn timer_semantics_table() {
    /// `(name, script, expected fired tags relative to join time)`.
    type Case = (&'static str, &'static [Op], &'static [(u64, u64)]);
    let j = join_ms();
    let table: &[Case] = &[
        (
            "single timer fires once at its delay",
            &[Op::Set {
                delay_ms: 10,
                tag: 1,
            }],
            &[(1, 10)],
        ),
        (
            "zero-delay timer fires (not dropped, not reentrant)",
            &[Op::Set {
                delay_ms: 0,
                tag: 7,
            }],
            &[(7, 0)],
        ),
        (
            "duplicate SetTimer does not coalesce: both twins fire",
            &[
                Op::Set {
                    delay_ms: 10,
                    tag: 5,
                },
                Op::Set {
                    delay_ms: 10,
                    tag: 5,
                },
            ],
            &[(5, 10), (5, 10)],
        ),
        (
            "cancelling one twin leaves the other armed",
            &[
                Op::Set {
                    delay_ms: 10,
                    tag: 5,
                },
                Op::Set {
                    delay_ms: 10,
                    tag: 5,
                },
                Op::Cancel { slot: 0 },
            ],
            &[(5, 10)],
        ),
        (
            "cancel suppresses only the named id",
            &[
                Op::Set {
                    delay_ms: 10,
                    tag: 1,
                },
                Op::Set {
                    delay_ms: 20,
                    tag: 2,
                },
                Op::Set {
                    delay_ms: 30,
                    tag: 3,
                },
                Op::Cancel { slot: 1 },
            ],
            &[(1, 10), (3, 30)],
        ),
        (
            "double cancel of one id is idempotent",
            &[
                Op::Set {
                    delay_ms: 10,
                    tag: 1,
                },
                Op::Set {
                    delay_ms: 20,
                    tag: 2,
                },
                Op::Cancel { slot: 0 },
                Op::Cancel { slot: 0 },
            ],
            &[(2, 20)],
        ),
        (
            "same-instant timers fire in arming order",
            &[
                Op::Set {
                    delay_ms: 10,
                    tag: 1,
                },
                Op::Set {
                    delay_ms: 10,
                    tag: 2,
                },
                Op::Set {
                    delay_ms: 10,
                    tag: 3,
                },
            ],
            &[(1, 10), (2, 10), (3, 10)],
        ),
    ];

    for (name, script, want) in table {
        let got = run_script(script);
        let want_abs: Vec<(u64, u64)> = want.iter().map(|&(tag, at)| (tag, j + at)).collect();
        assert_eq!(got, want_abs, "case failed: {name}");
    }
}

// ---------------------------------------------------------------------
// Races that need an in-handler step (not expressible in the table)
// ---------------------------------------------------------------------

/// Cancelling an id *after* its timer fired must be a no-op — and must
/// never suppress a different, still-pending timer (ids are unique and
/// never reused).
#[test]
fn cancel_after_fire_is_inert() {
    let mut p = Scripted::new(&[
        Op::Set {
            delay_ms: 10,
            tag: 1,
        },
        Op::Set {
            delay_ms: 30,
            tag: 2,
        },
    ]);
    // From inside tag 1's handler: cancel tag 1's own (already fired)
    // id, then arm a third timer to prove the machinery still works.
    p.on_first_fire = vec![
        Op::Cancel { slot: 0 },
        Op::Set {
            delay_ms: 10,
            tag: 3,
        },
    ];
    let fired: Vec<u64> = run_protocol(p).into_iter().map(|(tag, _)| tag).collect();
    assert_eq!(
        fired,
        vec![1, 3, 2],
        "stale cancel must not eat any later firing"
    );
}

/// A cancel issued while handling an event at time T beats a timer due
/// at that same instant T: the pending same-tick firing is suppressed.
#[test]
fn same_instant_cancel_wins_the_race() {
    let mut p = Scripted::new(&[
        Op::Set {
            delay_ms: 10,
            tag: 1,
        },
        // Due at the same instant as tag 1, armed later so it is
        // dispatched after tag 1's handler runs.
        Op::Set {
            delay_ms: 10,
            tag: 2,
        },
    ]);
    // Tag 1's handler cancels tag 2's timer, which is due *now*.
    p.on_first_fire = vec![Op::Cancel { slot: 1 }];
    let fired: Vec<u64> = run_protocol(p).into_iter().map(|(tag, _)| tag).collect();
    assert_eq!(
        fired,
        vec![1],
        "a cancel during the same instant must suppress the pending fire"
    );
}

/// Zero-delay timers armed from inside a timer handler still fire, and
/// fire after the current handler returns (queue discipline, never
/// reentrant dispatch).
#[test]
fn zero_delay_from_handler_fires_later_same_instant() {
    let mut p = Scripted::new(&[Op::Set {
        delay_ms: 10,
        tag: 1,
    }]);
    p.on_first_fire = vec![
        Op::Set {
            delay_ms: 0,
            tag: 2,
        },
        Op::Set {
            delay_ms: 0,
            tag: 3,
        },
    ];
    let fired = run_protocol(p);
    let tags: Vec<u64> = fired.iter().map(|&(tag, _)| tag).collect();
    assert_eq!(
        tags,
        vec![1, 2, 3],
        "zero-delay chain must run to completion"
    );
    assert_eq!(
        fired[0].1, fired[1].1,
        "zero-delay timer fires at the same virtual instant it was armed"
    );
    assert_eq!(fired[1].1, fired[2].1);
}

/// Timer ids from one node's perspective are globally unique: arming
/// the same script on two nodes yields disjoint id sets, so a cancel on
/// one node can never hit the other's timer.
#[test]
fn timer_ids_are_globally_unique_across_nodes() {
    #[derive(Default)]
    struct TwoNodes {
        ids: Vec<TimerId>,
        fired: u32,
    }
    impl Protocol for TwoNodes {
        type Msg = ();
        fn on_join(&mut self, w: &mut Net<'_, ()>, node: NodeId) {
            self.ids
                .push(w.set_timer(node, SimDuration::from_millis(10), 1));
        }
        fn on_message(&mut self, _w: &mut Net<'_, ()>, _t: NodeId, _f: NodeId, _m: ()) {}
        fn on_timer(&mut self, _w: &mut Net<'_, ()>, _n: NodeId, _tag: u64) {
            self.fired += 1;
        }
    }
    let mut sim = Sim::new(still_config(), TwoNodes::default());
    sim.spawn_at(Point::new(0.0, 0.0));
    sim.spawn_at(Point::new(10.0, 0.0));
    sim.run_for(SimDuration::from_secs(2));
    let ids = &sim.protocol().ids;
    assert_eq!(ids.len(), 2);
    assert_ne!(ids[0], ids[1], "two nodes must never share a timer id");
    assert_eq!(sim.protocol().fired, 2);
}
