//! End-to-end tests of the quorum-based autoconfiguration protocol over
//! the discrete-event simulator.

use addrspace::{Addr, AddrBlock};
use manet_sim::{NodeId, Point, Sim, SimDuration, SimTime, WorldConfig};
use qbac_core::{AllocatorChoice, NodeRole, ProtocolConfig, Qbac, UpdatePolicy};

fn still_world() -> WorldConfig {
    WorldConfig {
        speed: 0.0,
        ..WorldConfig::default()
    }
}

fn small_cfg() -> ProtocolConfig {
    ProtocolConfig {
        space: AddrBlock::new(Addr::new(0x0A00_0000), 1 << 10).unwrap(),
        ..ProtocolConfig::default()
    }
}

fn new_sim() -> Sim<Qbac> {
    Sim::new(still_world(), Qbac::new(small_cfg()))
}

/// Spawns `n` nodes in a rough grid covering the arena, one per second.
fn grid_arrivals(sim: &mut Sim<Qbac>, n: usize, pitch: f64) -> Vec<NodeId> {
    let cols = (n as f64).sqrt().ceil() as usize;
    (0..n)
        .map(|i| {
            let x = (i % cols) as f64 * pitch + 50.0;
            let y = (i / cols) as f64 * pitch + 50.0;
            let at = SimTime::from_micros(i as u64 * 1_000_000);
            sim.schedule_spawn_at(at, Point::new(x, y))
        })
        .collect()
}

#[test]
fn first_node_becomes_head_with_whole_space() {
    let mut sim = new_sim();
    let first = sim.spawn_at(Point::new(500.0, 500.0));
    sim.run_for(SimDuration::from_secs(5));

    let role = sim.protocol().role(first).unwrap();
    assert!(role.is_head(), "lone node must become the first head");
    let head = sim.protocol().head(first).unwrap();
    assert_eq!(head.pool.total_len(), 1 << 10);
    // The founder takes a random address of the space; the network ID is
    // that address.
    assert!(head.pool.owns(head.ip));
    assert_eq!(head.network_id, head.ip);
    assert_eq!(head.pool.free_count(), (1 << 10) - 1);
    assert!(sim.world().is_configured(first));
}

#[test]
fn nearby_joiner_becomes_common_node() {
    let mut sim = new_sim();
    let first = sim.spawn_at(Point::new(500.0, 500.0));
    sim.run_for(SimDuration::from_secs(3));
    let second = sim.spawn_at(Point::new(560.0, 500.0));
    sim.run_for(SimDuration::from_secs(3));

    let head_state = sim.protocol().head(first).unwrap();
    let (head_ip, net_id) = (head_state.ip, head_state.network_id);
    match sim.protocol().role(second).unwrap() {
        NodeRole::Common(c) => {
            assert_eq!(c.configurer, first);
            assert_ne!(c.ip, head_ip, "must not reuse the head's address");
            assert_eq!(c.network_id, net_id);
        }
        other => panic!("expected common node, got {other:?}"),
    }
    assert_eq!(sim.world().metrics().configured_nodes(), 2);
}

#[test]
fn distant_joiner_becomes_cluster_head_with_half_block() {
    let mut sim = new_sim();
    let first = sim.spawn_at(Point::new(100.0, 100.0));
    sim.run_for(SimDuration::from_secs(3));
    // ~400 m away: multi-hop impossible (no relay), so give it a relay.
    let relay = sim.spawn_at(Point::new(240.0, 100.0));
    sim.run_for(SimDuration::from_secs(3));
    let far = sim.spawn_at(Point::new(380.0, 100.0));
    sim.run_for(SimDuration::from_secs(5));

    // relay is within 2 hops of `first` → common; far is 2 hops from the
    // head → still common per the 2-hop rule. Move further:
    let farther = sim.spawn_at(Point::new(520.0, 100.0));
    sim.run_for(SimDuration::from_secs(5));

    let p = sim.protocol();
    assert!(p.role(first).unwrap().is_head());
    assert!(matches!(p.role(relay).unwrap(), NodeRole::Common(_)));
    assert!(matches!(p.role(far).unwrap(), NodeRole::Common(_)));
    let farther_role = p.role(farther).unwrap();
    assert!(
        farther_role.is_head(),
        "node >2 hops from any head must become a head, got {farther_role:?}"
    );
    let head = p.head(farther).unwrap();
    assert_eq!(head.pool.total_len(), 1 << 9, "half the space");
    assert_eq!(head.configurer, Some(first));
    // The new head knows its allocator in its QDSet and holds a replica.
    assert!(head.qd_set.contains_key(&first));
    assert!(head.quorum_space.contains_key(&first));
    // And symmetrically.
    let first_head = p.head(first).unwrap();
    assert!(first_head.qd_set.contains_key(&farther));
}

#[test]
fn fifty_sequential_arrivals_all_unique() {
    let mut sim = new_sim();
    grid_arrivals(&mut sim, 50, 130.0);
    sim.run_until(SimTime::from_micros(80_000_000));

    let configured = sim.world().metrics().configured_nodes();
    assert!(
        configured >= 48,
        "expected nearly all of 50 configured, got {configured}"
    );
    let (w, p) = sim.parts_mut();
    p.audit_unique(w).expect("no duplicate addresses");
}

#[test]
fn dense_arrivals_all_configured_by_one_head() {
    let mut sim = new_sim();
    // All within radio range of each other.
    for i in 0..10 {
        let at = SimTime::from_micros(i * 2_000_000);
        sim.schedule_spawn_at(at, Point::new(480.0 + (i as f64) * 8.0, 500.0));
    }
    sim.run_until(SimTime::from_micros(40_000_000));
    let heads = sim.protocol().heads(sim.world());
    assert_eq!(heads.len(), 1, "a single cluster suffices: {heads:?}");
    assert_eq!(sim.world().metrics().configured_nodes(), 10);
    let (w, p) = sim.parts_mut();
    p.audit_unique(w).unwrap();
}

#[test]
fn graceful_departure_returns_address_for_reuse() {
    let mut sim = new_sim();
    let _first = sim.spawn_at(Point::new(500.0, 500.0));
    sim.run_for(SimDuration::from_secs(3));
    let second = sim.spawn_at(Point::new(560.0, 500.0));
    sim.run_for(SimDuration::from_secs(3));
    let ip2 = sim.protocol().role(second).unwrap().ip().unwrap();

    sim.leave_now(second, true);
    sim.run_for(SimDuration::from_secs(2));
    assert!(
        !sim.world().is_alive(second),
        "departure handshake completes"
    );

    // The returned address is handed to the next joiner.
    let third = sim.spawn_at(Point::new(540.0, 500.0));
    sim.run_for(SimDuration::from_secs(3));
    assert_eq!(sim.protocol().role(third).unwrap().ip(), Some(ip2));
}

#[test]
fn head_graceful_departure_hands_space_to_successor() {
    let mut sim = new_sim();
    let first = sim.spawn_at(Point::new(100.0, 100.0));
    sim.run_for(SimDuration::from_secs(3));
    // Build a second head 3 hops away via two relays.
    let r1 = sim.spawn_at(Point::new(240.0, 100.0));
    sim.run_for(SimDuration::from_secs(2));
    let r2 = sim.spawn_at(Point::new(380.0, 100.0));
    sim.run_for(SimDuration::from_secs(2));
    let second_head = sim.spawn_at(Point::new(520.0, 100.0));
    sim.run_for(SimDuration::from_secs(5));
    assert!(sim.protocol().role(second_head).unwrap().is_head());
    let handed = sim.protocol().head(second_head).unwrap().pool.total_len();

    sim.leave_now(second_head, true);
    sim.run_for(SimDuration::from_secs(3));
    assert!(!sim.world().is_alive(second_head));

    // Its configurer (first) should own the space again.
    let first_head = sim.protocol().head(first).unwrap();
    assert_eq!(
        first_head.pool.total_len(),
        1 << 10,
        "space reunified after handback (handed {handed})"
    );
    assert!(!first_head.qd_set.contains_key(&second_head));
    let _ = (r1, r2);
}

#[test]
fn members_learn_new_allocator_after_head_departure() {
    let mut sim = new_sim();
    let first = sim.spawn_at(Point::new(100.0, 100.0));
    sim.run_for(SimDuration::from_secs(3));
    for x in [240.0, 380.0] {
        sim.spawn_at(Point::new(x, 100.0));
        sim.run_for(SimDuration::from_secs(2));
    }
    let second_head = sim.spawn_at(Point::new(520.0, 100.0));
    sim.run_for(SimDuration::from_secs(5));
    // A member of the second head.
    let member = sim.spawn_at(Point::new(560.0, 100.0));
    sim.run_for(SimDuration::from_secs(3));
    match sim.protocol().role(member).unwrap() {
        NodeRole::Common(c) => assert_eq!(c.configurer, second_head),
        r => panic!("expected common, got {r:?}"),
    }

    sim.leave_now(second_head, true);
    sim.run_for(SimDuration::from_secs(3));

    match sim.protocol().role(member).unwrap() {
        NodeRole::Common(c) => assert_eq!(
            c.configurer, first,
            "member must learn the successor allocator"
        ),
        r => panic!("expected common, got {r:?}"),
    }
}

#[test]
fn abrupt_head_departure_is_reclaimed() {
    let mut sim = new_sim();
    let first = sim.spawn_at(Point::new(100.0, 100.0));
    sim.run_for(SimDuration::from_secs(3));
    for x in [240.0, 380.0] {
        sim.spawn_at(Point::new(x, 100.0));
        sim.run_for(SimDuration::from_secs(2));
    }
    let second_head = sim.spawn_at(Point::new(520.0, 100.0));
    sim.run_for(SimDuration::from_secs(5));
    assert!(sim.protocol().role(second_head).unwrap().is_head());
    // A member of the vanished head that survives it — placed so it stays
    // connected through the relay chain once the head dies.
    let member = sim.spawn_at(Point::new(500.0, 140.0));
    sim.run_for(SimDuration::from_secs(3));
    let member_ip = sim.protocol().role(member).unwrap().ip().unwrap();

    sim.leave_now(second_head, false); // abrupt
    sim.run_for(SimDuration::from_secs(2));

    // Trigger detection: a new node asks `first` for an address; the vote
    // to the dead member times out, probes fire, reclamation runs.
    let trigger = sim.spawn_at(Point::new(140.0, 100.0));
    sim.run_for(SimDuration::from_secs(10));

    let p = sim.protocol();
    assert!(p.stats().reclamations >= 1, "reclamation must run");
    let first_head = p.head(first).unwrap();
    assert_eq!(
        first_head.pool.total_len(),
        1 << 10,
        "vanished head's space absorbed by the initiator"
    );
    // The surviving member's address must still be recorded allocated.
    assert_eq!(
        first_head.pool.table().status(member_ip),
        addrspace::AddrStatus::Allocated(member.index()),
        "surviving member's REC_REP preserved its address"
    );
    // And the member adopted the initiator.
    match p.role(member).unwrap() {
        NodeRole::Common(c) => assert_eq!(c.configurer, first),
        r => panic!("expected common, got {r:?}"),
    }
    let _ = trigger;
    let (w, p) = sim.parts_mut();
    p.audit_unique(w).unwrap();
}

#[test]
fn borrowing_extends_a_depleted_head() {
    let mut sim = Sim::new(
        still_world(),
        Qbac::new(ProtocolConfig {
            // Tiny space: first head owns 8 addresses, hands half away.
            space: AddrBlock::new(Addr::new(0), 8).unwrap(),
            ..ProtocolConfig::default()
        }),
    );
    let first = sim.spawn_at(Point::new(100.0, 100.0));
    sim.run_for(SimDuration::from_secs(3));
    for x in [240.0, 380.0] {
        sim.spawn_at(Point::new(x, 100.0));
        sim.run_for(SimDuration::from_secs(2));
    }
    let second_head = sim.spawn_at(Point::new(520.0, 100.0));
    sim.run_for(SimDuration::from_secs(5));
    assert!(sim.protocol().role(second_head).unwrap().is_head());
    // second head owns 4 addresses (one for itself) → 3 free. Fill them.
    for i in 0..3 {
        sim.spawn_at(Point::new(540.0 + i as f64 * 10.0, 100.0));
        sim.run_for(SimDuration::from_secs(3));
    }
    assert_eq!(
        sim.protocol().head(second_head).unwrap().pool.free_count(),
        0
    );

    // Next joiner near the depleted head must be served from QuorumSpace.
    let extra = sim.spawn_at(Point::new(585.0, 100.0));
    sim.run_for(SimDuration::from_secs(5));
    let role = sim.protocol().role(extra).unwrap();
    assert!(
        role.is_configured(),
        "borrowing must configure the joiner: {role:?}"
    );
    assert!(sim.protocol().stats().borrows >= 1, "a borrow must occur");
    let (w, p) = sim.parts_mut();
    p.audit_unique(w).unwrap();
    let _ = first;
}

#[test]
fn quorum_replicas_stay_consistent_with_owner() {
    let mut sim = new_sim();
    let first = sim.spawn_at(Point::new(100.0, 100.0));
    sim.run_for(SimDuration::from_secs(3));
    for x in [240.0, 380.0] {
        sim.spawn_at(Point::new(x, 100.0));
        sim.run_for(SimDuration::from_secs(2));
    }
    let second_head = sim.spawn_at(Point::new(520.0, 100.0));
    sim.run_for(SimDuration::from_secs(5));
    // Configure members under the first head → commits flow to replicas.
    for dx in [30.0, 60.0] {
        sim.spawn_at(Point::new(100.0 + dx, 130.0));
        sim.run_for(SimDuration::from_secs(3));
    }

    let p = sim.protocol();
    let owner = p.head(first).unwrap();
    let replica = p
        .head(second_head)
        .unwrap()
        .quorum_space
        .get(&first)
        .expect("second head replicates the first");
    for (addr, rec) in owner.pool.table().iter() {
        let rep_rec = replica.table.record(addr);
        assert_eq!(
            rep_rec.status, rec.status,
            "replica of {addr} diverged: owner {rec:?}, replica {rep_rec:?}"
        );
    }
}

#[test]
fn update_policy_upon_leave_sends_no_location_updates() {
    let run = |policy: UpdatePolicy| {
        let world = WorldConfig {
            speed: 20.0,
            seed: 11,
            ..WorldConfig::default()
        };
        let mut sim = Sim::new(
            world,
            Qbac::new(ProtocolConfig {
                update_policy: policy,
                ..small_cfg()
            }),
        );
        for i in 0..30 {
            sim.schedule_spawn_random(SimTime::from_micros(i * 1_000_000));
        }
        sim.run_until(SimTime::from_micros(120_000_000));
        sim.world()
            .metrics()
            .hops(manet_sim::MsgCategory::Maintenance)
    };
    let periodic = run(UpdatePolicy::Periodic);
    let upon_leave = run(UpdatePolicy::UponLeave);
    assert!(
        upon_leave <= periodic,
        "upon-leave must not exceed periodic maintenance ({upon_leave} vs {periodic})"
    );
}

#[test]
fn largest_block_policy_configures_correctly() {
    let mut sim = Sim::new(
        still_world(),
        Qbac::new(ProtocolConfig {
            allocator_choice: AllocatorChoice::LargestBlock,
            ..small_cfg()
        }),
    );
    grid_arrivals(&mut sim, 25, 140.0);
    sim.run_until(SimTime::from_micros(40_000_000));
    assert!(sim.world().metrics().configured_nodes() >= 23);
    let (w, p) = sim.parts_mut();
    p.audit_unique(w).unwrap();
}

#[test]
fn latency_recorded_for_every_configured_node() {
    let mut sim = new_sim();
    grid_arrivals(&mut sim, 16, 140.0);
    sim.run_until(SimTime::from_micros(30_000_000));
    let m = sim.world().metrics();
    assert_eq!(
        m.config_latency().count(),
        m.configured_nodes(),
        "one latency sample per configured node"
    );
    assert!(m.mean_config_latency().unwrap() > 0.0);
}

#[test]
fn partition_merge_rejoins_higher_network() {
    // Two independent networks form out of radio range; their IDs (the
    // founders' random addresses) differ. A relay chain then connects
    // them: hellos reveal the mismatch and the higher-ID network
    // reconfigures into the lower-ID one (§V-C).
    let mut sim = new_sim();
    let a = sim.spawn_at(Point::new(50.0, 50.0));
    sim.run_for(SimDuration::from_secs(5));
    let b = sim.spawn_at(Point::new(950.0, 950.0));
    sim.run_for(SimDuration::from_secs(5));
    let pa = sim.protocol();
    assert!(pa.role(a).unwrap().is_head());
    assert!(pa.role(b).unwrap().is_head());
    let net_a = pa.role(a).unwrap().network_id().unwrap();
    let net_b = pa.role(b).unwrap().network_id().unwrap();
    assert_ne!(net_a, net_b, "independent networks carry distinct IDs");
    let winner = net_a.min(net_b);

    // Bridge the diagonal with relays ~130 m apart.
    for i in 1..=9 {
        let t = f64::from(i) / 10.0;
        sim.spawn_at(Point::new(50.0 + 900.0 * t, 50.0 + 900.0 * t));
        sim.run_for(SimDuration::from_secs(2));
    }
    // Let hellos flow and the merge settle.
    sim.run_for(SimDuration::from_secs(30));

    let p = sim.protocol();
    for n in [a, b] {
        let role = p.role(n).unwrap();
        assert!(
            role.is_configured(),
            "{n} must be reconfigured after the merge: {role:?}"
        );
        assert_eq!(
            role.network_id(),
            Some(winner),
            "{n} must end in the lower-ID network"
        );
    }
    assert!(
        p.stats().merges >= 1,
        "at least one side must have rejoined"
    );
    let (w, pr) = sim.parts_mut();
    pr.audit_unique(w).unwrap();
}

#[test]
fn deterministic_across_identical_runs() {
    let run = |seed: u64| {
        let world = WorldConfig {
            seed,
            ..WorldConfig::default()
        };
        let mut sim = Sim::new(world, Qbac::new(small_cfg()));
        for i in 0..40 {
            sim.schedule_spawn_random(SimTime::from_micros(i * 800_000));
        }
        sim.run_until(SimTime::from_micros(60_000_000));
        let m = sim.world().metrics();
        (
            m.total_hops(),
            m.configured_nodes(),
            m.mean_config_latency(),
        )
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn config_latency_lower_without_quorum_overhead_for_first_nodes() {
    // Sanity on latency accounting: the first node's latency reflects
    // only its Max_r broadcasts.
    let mut sim = new_sim();
    sim.spawn_at(Point::new(500.0, 500.0));
    sim.run_for(SimDuration::from_secs(5));
    let lat = sim.world().metrics().config_latency();
    assert_eq!(lat.count(), 1);
    let max_r = sim.protocol().config().max_r;
    assert_eq!(lat.min(), Some(u64::from(max_r)));
    assert_eq!(
        lat.max(),
        Some(u64::from(max_r)),
        "one hop charged per probe broadcast"
    );
}

#[test]
fn flow_spans_track_every_join_to_completion() {
    use manet_sim::FlowKind;
    let mut sim = new_sim();
    sim.world_mut().enable_observer();
    sim.world_mut().enable_trace(65_536);
    grid_arrivals(&mut sim, 16, 140.0);
    sim.run_until(SimTime::from_micros(30_000_000));

    let w = sim.world();
    let t = w.observer().tally(FlowKind::Join);
    assert_eq!(t.started, 16, "one join flow per arriving node");
    assert_eq!(
        t.assigned,
        w.metrics().configured_nodes(),
        "every configured node closed its join flow with `assigned`"
    );
    assert_eq!(
        t.open(),
        t.started - t.assigned - t.abandoned,
        "tally bookkeeping is consistent"
    );

    // Span records land in the trace with correlation IDs.
    let jsonl = w.trace().to_jsonl();
    assert!(jsonl.contains("\"event\":\"flow\""));
    assert!(jsonl.contains("\"kind\":\"join\""));
    assert!(jsonl.contains("\"stage\":\"started\""));
    assert!(jsonl.contains("\"stage\":\"assigned\""));

    // The new distributions fill alongside: at least one quorum vote ran
    // and every completed join recorded its retry count.
    assert!(w.metrics().vote_rounds().count() > 0);
    assert!(w.metrics().retries().count() >= w.metrics().configured_nodes());
}

#[test]
fn disabled_observer_emits_no_flow_records() {
    let mut sim = new_sim();
    sim.world_mut().enable_trace(8192);
    grid_arrivals(&mut sim, 4, 160.0);
    sim.run_until(SimTime::from_micros(10_000_000));
    let w = sim.world();
    assert_eq!(w.observer().tally(manet_sim::FlowKind::Join).started, 0);
    assert!(!w.trace().to_jsonl().contains("\"event\":\"flow\""));
}
