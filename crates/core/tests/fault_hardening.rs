//! Hardening of the join/reclaim timer paths against injected faults:
//! bounded backoff retries, idempotent re-requests, and recovery after
//! total loss windows.

use manet_sim::faults::FaultPlan;
use manet_sim::{Point, Sim, SimDuration, SimTime, WorldConfig};
use qbac_core::{ProtocolConfig, Qbac};

fn still(plan: FaultPlan) -> WorldConfig {
    WorldConfig {
        speed: 0.0,
        fault_plan: plan,
        ..WorldConfig::default()
    }
}

#[test]
fn join_backoff_doubles_every_other_attempt_and_caps() {
    let cfg = ProtocolConfig::default();
    let base = cfg.join_retry;
    assert_eq!(cfg.join_backoff(0), base);
    assert_eq!(cfg.join_backoff(1), base);
    assert_eq!(cfg.join_backoff(2), base * 2);
    assert_eq!(cfg.join_backoff(4), base * 4);
    assert_eq!(cfg.join_backoff(6), base * 8);
    // Bounded: a node that has retried forever still probes at 8x.
    assert_eq!(cfg.join_backoff(1000), base * 8);
}

/// Every message is delayed well past the retry timeout, so the joiner
/// re-sends `COM_REQ` several times before the first `COM_CFG` lands.
/// The allocator must answer re-requests with the *same* address
/// instead of burning a fresh one per duplicate request.
#[test]
fn delayed_replies_do_not_burn_addresses() {
    let plan =
        FaultPlan::new(21).with_delay(1.0, SimDuration::from_secs(2), SimDuration::from_secs(2));
    let mut sim = Sim::new(still(plan), Qbac::new(ProtocolConfig::default()));
    sim.spawn_at(Point::new(100.0, 100.0));
    sim.run_for(SimDuration::from_secs(2)); // founder settles as head
    sim.spawn_at(Point::new(200.0, 100.0));
    sim.run_for(SimDuration::from_secs(20));

    assert_eq!(sim.world().metrics().configured_nodes(), 2);
    let heads = sim.protocol().heads(sim.world());
    assert_eq!(heads.len(), 1);
    let pool = &sim.protocol().head(heads[0]).expect("head state").pool;
    assert_eq!(
        pool.table().allocated_count(),
        2,
        "exactly the head's own address plus one member — duplicate \
         COM_REQs must not allocate extra addresses"
    );
    assert!(sim_audit(&mut sim).is_ok());
}

/// Nodes that join while a jam blackholes their neighborhood must keep
/// retrying (at the capped backoff pace) and configure once the jam
/// lifts — without founding a competing network.
#[test]
fn stranded_joiners_recover_when_jam_lifts() {
    // Jam covers the right side of the chain for the first 12 seconds.
    let plan = FaultPlan::new(22).with_jam(
        Point::new(150.0, 0.0),
        Point::new(450.0, 200.0),
        SimTime::ZERO,
        SimTime::from_micros(12_000_000),
    );
    let mut sim = Sim::new(still(plan), Qbac::new(ProtocolConfig::default()));
    for i in 0..5 {
        sim.run_until(SimTime::from_micros(i * 1_000_000));
        sim.spawn_at(Point::new(i as f64 * 100.0, 100.0));
    }
    sim.run_until(SimTime::from_micros(12_000_000));
    let configured_during_jam = sim.world().metrics().configured_nodes();
    assert!(
        configured_during_jam < 5,
        "the jam must have stranded someone"
    );
    assert!(
        sim.world().metrics().faults().dropped > 0,
        "the jam must have eaten traffic"
    );

    sim.run_for(SimDuration::from_secs(30));
    assert_eq!(
        sim.world().metrics().configured_nodes(),
        5,
        "stranded joiners recover after the jam lifts"
    );
    assert_eq!(
        sim.protocol().heads(sim.world()).len() + sim.protocol().common_nodes(sim.world()).len(),
        5
    );
    assert!(sim_audit(&mut sim).is_ok());
}

/// 30% uniform loss: joins still complete (slower), and the address
/// table stays duplicate-free.
#[test]
fn lossy_network_converges_without_duplicates() {
    let plan = FaultPlan::new(23).with_loss(0.3);
    let mut sim = Sim::new(still(plan), Qbac::new(ProtocolConfig::default()));
    for i in 0..8 {
        sim.run_until(SimTime::from_micros(i * 1_000_000));
        sim.spawn_at(Point::new(
            100.0 + (i % 4) as f64 * 90.0,
            100.0 + (i / 4) as f64 * 90.0,
        ));
    }
    sim.run_for(SimDuration::from_secs(60));
    assert_eq!(sim.world().metrics().configured_nodes(), 8);
    assert!(sim_audit(&mut sim).is_ok());
}

fn sim_audit(sim: &mut Sim<Qbac>) -> Result<(), Vec<qbac_core::DuplicateAddress>> {
    let (world, protocol) = sim.parts_mut();
    protocol.audit_unique(world)
}
