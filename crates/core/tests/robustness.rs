//! Robustness under lossy delivery — an ablation of the paper's
//! "reliable delivery within transmission range" assumption (§IV-B).
//! The protocol's retries (T_e, T_d, join retries) must carry it through
//! moderate loss.

use manet_sim::{Point, Sim, SimDuration, SimTime, WorldConfig};
use qbac_core::{ProtocolConfig, Qbac};

fn lossy_world(loss: f64, seed: u64) -> WorldConfig {
    WorldConfig {
        speed: 0.0,
        loss_rate: loss,
        seed,
        ..WorldConfig::default()
    }
}

fn run(loss: f64, seed: u64, nn: u64) -> (u64, bool) {
    let mut sim = Sim::new(
        lossy_world(loss, seed),
        Qbac::new(ProtocolConfig::default()),
    );
    // A compact cluster so connectivity is never the bottleneck.
    for i in 0..nn {
        let at = SimTime::from_micros(i * 1_000_000);
        let x = 450.0 + 15.0 * (i % 8) as f64;
        let y = 450.0 + 15.0 * (i / 8) as f64;
        sim.schedule_spawn_at(at, Point::new(x, y));
    }
    sim.run_until(SimTime::from_micros(nn * 1_000_000) + SimDuration::from_secs(60));
    let configured = sim.world().metrics().configured_nodes();
    let (w, p) = sim.parts_mut();
    (configured, p.audit_unique(w).is_ok())
}

#[test]
fn ten_percent_loss_still_configures_everyone() {
    let (configured, unique) = run(0.10, 3, 16);
    assert!(
        configured >= 15,
        "retries must overcome 10% loss: {configured}/16"
    );
    assert!(unique, "loss must never cause duplicates");
}

#[test]
fn thirty_percent_loss_degrades_but_stays_safe() {
    let (configured, unique) = run(0.30, 4, 16);
    assert!(
        configured >= 8,
        "even heavy loss should configure many: {configured}/16"
    );
    assert!(unique, "safety holds regardless of loss");
}

#[test]
fn loss_increases_config_latency() {
    let latency = |loss: f64| {
        let mut sim = Sim::new(lossy_world(loss, 9), Qbac::new(ProtocolConfig::default()));
        for i in 0..12u64 {
            let at = SimTime::from_micros(i * 1_000_000);
            sim.schedule_spawn_at(at, Point::new(460.0 + 12.0 * i as f64, 500.0));
        }
        sim.run_until(SimTime::from_micros(80_000_000));
        sim.world().metrics().mean_config_latency().unwrap_or(0.0)
    };
    let clean = latency(0.0);
    let lossy = latency(0.25);
    assert!(
        lossy >= clean,
        "loss-induced retries must not lower latency: clean {clean:.1}, lossy {lossy:.1}"
    );
}

#[test]
fn reliable_runs_unchanged_by_loss_feature() {
    // loss_rate = 0 must not consume RNG draws: identical to a config
    // without the field ever being touched.
    let run_once = || {
        let mut sim = Sim::new(lossy_world(0.0, 77), Qbac::new(ProtocolConfig::default()));
        for i in 0..10u64 {
            let at = SimTime::from_micros(i * 1_000_000);
            sim.schedule_spawn_at(at, Point::new(470.0 + 10.0 * i as f64, 500.0));
        }
        sim.run_until(SimTime::from_micros(30_000_000));
        sim.world().metrics().clone()
    };
    assert_eq!(run_once(), run_once());
}
