//! Tests of the protocol extensions (§V): address borrowing with the
//! distinguished-node tiebreak, agent forwarding, quorum adjustment, and
//! partition handling.

use addrspace::{Addr, AddrBlock};
use manet_sim::{MsgCategory, Point, Sim, SimDuration, WorldConfig};
use qbac_core::{ProtocolConfig, Qbac};

fn still_world() -> WorldConfig {
    WorldConfig {
        speed: 0.0,
        ..WorldConfig::default()
    }
}

fn tiny_cfg(space: u32) -> ProtocolConfig {
    ProtocolConfig {
        space: AddrBlock::new(Addr::new(0), space).unwrap(),
        ..ProtocolConfig::default()
    }
}

/// Builds: founder at x=100, relays at 240/380, second head at 520.
fn two_cluster_sim(cfg: ProtocolConfig) -> (Sim<Qbac>, manet_sim::NodeId, manet_sim::NodeId) {
    let mut sim = Sim::new(still_world(), Qbac::new(cfg));
    let first = sim.spawn_at(Point::new(100.0, 100.0));
    sim.run_for(SimDuration::from_secs(3));
    for x in [240.0, 380.0] {
        sim.spawn_at(Point::new(x, 100.0));
        sim.run_for(SimDuration::from_secs(2));
    }
    let second = sim.spawn_at(Point::new(520.0, 100.0));
    sim.run_for(SimDuration::from_secs(5));
    assert!(sim.protocol().role(second).unwrap().is_head());
    (sim, first, second)
}

#[test]
fn borrowing_uses_owner_as_distinguished_voter() {
    // Space of 8: first head keeps 4, second head gets 4 (1 for itself,
    // 3 spare). Fill the second head's pool, then borrow.
    let (mut sim, first, second) = two_cluster_sim(tiny_cfg(8));
    for i in 0..3 {
        let n = sim.spawn_at(Point::new(540.0 + 10.0 * f64::from(i), 100.0));
        sim.run_for(SimDuration::from_secs(3));
        assert!(
            sim.protocol().role(n).unwrap().is_configured(),
            "filler {i} must configure"
        );
    }
    assert_eq!(
        sim.protocol().head(second).unwrap().pool.free_count(),
        0,
        "second head must be depleted"
    );
    let extra = sim.spawn_at(Point::new(505.0, 130.0));
    sim.run_for(SimDuration::from_secs(5));

    let p = sim.protocol();
    assert!(p.stats().borrows >= 1);
    let ip = p
        .role(extra)
        .unwrap()
        .ip()
        .expect("configured by borrowing");
    // The borrowed address comes out of the *first* head's block.
    let owner = p.head(first).unwrap();
    assert!(
        owner.pool.owns(ip),
        "{ip} must belong to the owner's space {:?}",
        owner.pool.blocks()
    );
    // And the owner's authoritative table knows about it.
    assert_eq!(
        owner.pool.table().status(ip),
        addrspace::AddrStatus::Allocated(extra.index())
    );
    let (w, pr) = sim.parts_mut();
    pr.audit_unique(w).unwrap();
}

#[test]
fn returning_a_borrowed_address_reaches_the_owner() {
    let (mut sim, first, second) = two_cluster_sim(tiny_cfg(8));
    for i in 0..3 {
        sim.spawn_at(Point::new(540.0 + 10.0 * f64::from(i), 100.0));
        sim.run_for(SimDuration::from_secs(3));
    }
    let extra = sim.spawn_at(Point::new(505.0, 130.0));
    sim.run_for(SimDuration::from_secs(5));
    let ip = sim.protocol().role(extra).unwrap().ip().unwrap();
    assert!(sim.protocol().head(first).unwrap().pool.owns(ip));

    sim.leave_now(extra, true);
    sim.run_for(SimDuration::from_secs(3));
    assert!(!sim.world().is_alive(extra));
    // The owner's record became vacant again (routed via configurer).
    let status = sim.protocol().head(first).unwrap().pool.table().status(ip);
    assert_eq!(
        status,
        addrspace::AddrStatus::Vacant,
        "borrowed address returned"
    );
    let _ = second;
}

#[test]
fn agent_forwarding_serves_when_everything_is_depleted() {
    // Space of 4: first head keeps 2 (1 self + 1 free), second head gets
    // 2 (1 self + 1 free). Exhaust the second head's pool AND the
    // replica of the first head's space, forcing the agent path.
    let (mut sim, _first, second) = two_cluster_sim(tiny_cfg(6));
    // Fill second head's single spare address.
    let fill = sim.spawn_at(Point::new(540.0, 100.0));
    sim.run_for(SimDuration::from_secs(3));
    assert!(sim.protocol().role(fill).unwrap().is_configured());
    // Fill the remaining space near the first head via borrowing or
    // directly, then ask the depleted second head again.
    let more = sim.spawn_at(Point::new(505.0, 130.0));
    sim.run_for(SimDuration::from_secs(4));
    let even_more = sim.spawn_at(Point::new(520.0, 140.0));
    sim.run_for(SimDuration::from_secs(6));

    let p = sim.protocol();
    let configured = [fill, more, even_more]
        .iter()
        .filter(|n| p.role(**n).is_some_and(|r| r.is_configured()))
        .count();
    // The space only holds 6 addresses total (2 heads + relays + fills);
    // whoever could be served was served without duplicates.
    let (w, pr) = sim.parts_mut();
    pr.audit_unique(w).unwrap();
    assert!(configured >= 1);
    let _ = second;
}

#[test]
fn quorum_shrink_suspends_then_restores_on_rep_ack() {
    let (mut sim, first, second) = two_cluster_sim(tiny_cfg(1 << 10));
    // Both heads list each other.
    assert!(sim
        .protocol()
        .head(first)
        .unwrap()
        .qd_set
        .contains_key(&second));
    assert!(sim
        .protocol()
        .head(second)
        .unwrap()
        .qd_set
        .contains_key(&first));
    // No suspensions in a healthy network even after traffic.
    let n = sim.spawn_at(Point::new(140.0, 130.0));
    sim.run_for(SimDuration::from_secs(5));
    assert!(sim.protocol().role(n).unwrap().is_configured());
    assert!(sim.protocol().head(first).unwrap().suspended.is_empty());
    assert_eq!(sim.protocol().stats().quorum_shrinks, 0);
}

#[test]
fn upon_leave_policy_sends_no_update_loc() {
    let cfg = ProtocolConfig {
        update_policy: qbac_core::UpdatePolicy::UponLeave,
        ..ProtocolConfig::default()
    };
    let world = WorldConfig {
        speed: 25.0,
        seed: 4,
        ..WorldConfig::default()
    };
    let mut sim = Sim::new(world, Qbac::new(cfg));
    sim.spawn_at(Point::new(500.0, 500.0));
    sim.run_for(SimDuration::from_secs(2));
    for i in 0..8 {
        sim.spawn_at(Point::new(460.0 + 10.0 * f64::from(i), 520.0));
        sim.run_for(SimDuration::from_secs(1));
    }
    // Let them roam: no departures, so maintenance should stay zero.
    sim.run_for(SimDuration::from_secs(60));
    assert_eq!(
        sim.world().metrics().hops(MsgCategory::Maintenance),
        0,
        "upon-leave policy must not send location updates"
    );
}

#[test]
fn tiny_space_recovers_after_abrupt_head_loss() {
    // An 8-address network: founder + two relays take three addresses,
    // the second head gets a (possibly record-carrying) half. Killing it
    // abruptly must end in reclamation — even this tiny space recovers
    // and stays duplicate-free.
    let cfg = tiny_cfg(8);
    let (mut sim, first, second) = two_cluster_sim(cfg);
    sim.leave_now(second, false);
    sim.run_for(SimDuration::from_secs(1));
    // A fresh joiner near the founder makes it touch its quorum, detect
    // the silence, probe, and reclaim.
    sim.spawn_at(Point::new(150.0, 140.0));
    sim.run_for(SimDuration::from_secs(15));

    let stats = sim.protocol().stats();
    assert!(
        stats.reclamations + stats.reinits >= 1,
        "the network must recover: {stats:?}"
    );
    let head = sim.protocol().head(first).expect("founder still leads");
    assert_eq!(head.pool.total_len(), 8, "the whole space is back");
    let (w, p) = sim.parts_mut();
    p.audit_unique(w).unwrap();
}

#[test]
fn hello_traffic_is_accounted_separately() {
    let (sim, _, _) = two_cluster_sim(ProtocolConfig::default());
    let m = sim.world().metrics();
    assert!(m.hops(MsgCategory::Hello) > 0, "beacons must flow");
    assert!(
        m.protocol_hops() < m.total_hops(),
        "hello excluded from protocol totals"
    );
}

#[test]
fn stats_track_roles() {
    let (sim, _, _) = two_cluster_sim(ProtocolConfig::default());
    let stats = sim.protocol().stats();
    assert_eq!(stats.heads_configured, 2);
    assert_eq!(stats.common_configured, 2);
}
