//! Lint: the protocol core stays sans-io.
//!
//! The whole point of the PR-9 refactor is that `qbac-core` (and the
//! baseline protocols) talk to the world only through `proto-io`'s
//! `Net`/`NetBackend` boundary. A `manet-sim` entry creeping back into
//! `[dependencies]` would silently re-couple the core to backend #1 and
//! make the transcript-differential suite vacuous, so this test fails
//! the build the moment that happens. (`[dev-dependencies]` is exempt:
//! tests drive the core *through* the simulator on purpose.)

use std::path::Path;

/// Returns the dependency names of the `[dependencies]` section only
/// (stopping at the next `[section]` header).
fn runtime_deps(manifest: &str) -> Vec<String> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, _)) = line.split_once('=') {
            // `foo.workspace = true` is a dotted key; the dependency
            // name is the first path segment (crate names have no dots).
            let name = key.trim().trim_matches('"').split('.').next().unwrap();
            deps.push(name.to_string());
        }
    }
    deps
}

fn assert_sans_io(crate_dir: &Path, label: &str) {
    let manifest_path = crate_dir.join("Cargo.toml");
    let manifest = std::fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", manifest_path.display()));
    let deps = runtime_deps(&manifest);
    assert!(
        !deps.is_empty(),
        "{label}: [dependencies] parse came back empty — lint is broken"
    );
    assert!(
        !deps.iter().any(|d| d == "manet-sim"),
        "{label}: [dependencies] must not contain manet-sim — the \
         protocol core is sans-io and may only see the world through \
         proto-io (manet-sim belongs in [dev-dependencies]); found: {deps:?}"
    );
    assert!(
        deps.iter().any(|d| d == "proto-io"),
        "{label}: expected proto-io in [dependencies]; found: {deps:?}"
    );
}

#[test]
fn qbac_core_has_no_simulator_dependency() {
    assert_sans_io(Path::new(env!("CARGO_MANIFEST_DIR")), "qbac-core");
}

#[test]
fn baselines_have_no_simulator_dependency() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates/ parent exists")
        .join("baselines");
    assert_sans_io(&dir, "baselines");
}

#[test]
fn section_parser_sees_dev_dependencies_as_exempt() {
    let manifest = "\
[dependencies]
proto-io = { workspace = true }
serde.workspace = true

[dev-dependencies]
manet-sim.workspace = true
";
    assert_eq!(runtime_deps(manifest), vec!["proto-io", "serde"]);
}
