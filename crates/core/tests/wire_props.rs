//! Property-based tests of the wire codec: arbitrary messages round-trip
//! and arbitrary bytes never panic the decoder.

use addrspace::{Addr, AddrBlock, AddrRecord, AddrStatus, AllocationTable};
use manet_sim::NodeId;
use proptest::prelude::*;
use qbac_core::{wire, Msg, QuorumOp};
use quorum::VersionStamp;

fn arb_addr() -> impl Strategy<Value = Addr> {
    any::<u32>().prop_map(Addr::new)
}

fn arb_node() -> impl Strategy<Value = NodeId> {
    any::<u64>().prop_map(NodeId::new)
}

fn arb_block() -> impl Strategy<Value = AddrBlock> {
    (0u32..u32::MAX / 2, 1u32..1_000_000).prop_map(|(base, len)| {
        AddrBlock::new(Addr::new(base), len).expect("bounded block is valid")
    })
}

fn arb_status() -> impl Strategy<Value = AddrStatus> {
    prop_oneof![
        Just(AddrStatus::Free),
        any::<u64>().prop_map(AddrStatus::Allocated),
        Just(AddrStatus::Vacant),
    ]
}

fn arb_record() -> impl Strategy<Value = AddrRecord> {
    (arb_status(), any::<u64>()).prop_map(|(status, s)| AddrRecord {
        status,
        stamp: VersionStamp::new(s),
    })
}

fn arb_table() -> impl Strategy<Value = AllocationTable> {
    prop::collection::vec((arb_addr(), arb_record()), 0..20)
        .prop_map(|entries| entries.into_iter().collect())
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (
            prop::option::of(arb_addr()),
            any::<bool>(),
            prop::option::of(arb_addr())
        )
            .prop_map(|(sender_ip, is_head, network_id)| Msg::Hello {
                sender_ip,
                is_head,
                network_id
            }),
        Just(Msg::ComReq),
        arb_node().prop_map(|requestor| Msg::ComReqFwd { requestor }),
        (arb_addr(), arb_addr(), arb_addr(), any::<u32>()).prop_map(
            |(ip, configurer, network_id, spent_hops)| Msg::ComCfg {
                ip,
                configurer,
                network_id,
                spent_hops
            }
        ),
        Just(Msg::ComAck),
        Just(Msg::ComRej),
        Just(Msg::ChReq),
        any::<u64>().prop_map(|available| Msg::ChPrp { available }),
        Just(Msg::ChCnf),
        (
            arb_block(),
            arb_addr(),
            arb_addr(),
            arb_addr(),
            any::<u32>(),
            prop::collection::vec((arb_addr(), arb_record()), 0..6)
        )
            .prop_map(|(block, ip, configurer, network_id, spent_hops, records)| {
                Msg::ChCfg {
                    block,
                    ip,
                    configurer,
                    network_id,
                    spent_hops,
                    records,
                }
            }),
        Just(Msg::ChAck),
        Just(Msg::ChRej),
        (any::<u64>(), arb_node(), arb_addr()).prop_map(|(seq, owner, addr)| Msg::QuorumClt {
            seq,
            op: QuorumOp::CheckAddr { owner, addr }
        }),
        (any::<u64>(), arb_node()).prop_map(|(seq, owner)| Msg::QuorumClt {
            seq,
            op: QuorumOp::SplitBlock { owner }
        }),
        (any::<u64>(), any::<bool>(), any::<u64>()).prop_map(|(seq, grant, s)| Msg::QuorumCfm {
            seq,
            grant,
            stamp: VersionStamp::new(s)
        }),
        (arb_node(), arb_addr(), arb_record()).prop_map(|(owner, addr, record)| {
            Msg::QuorumCommit {
                owner,
                addr,
                record,
            }
        }),
        (
            arb_node(),
            arb_addr(),
            prop::collection::vec(arb_block(), 0..5),
            arb_table(),
            any::<bool>()
        )
            .prop_map(|(owner, owner_ip, blocks, table, reply_requested)| {
                Msg::ReplicaPush {
                    owner,
                    owner_ip,
                    blocks,
                    table,
                    reply_requested,
                }
            }),
        (arb_addr(), arb_addr()).prop_map(|(configurer, ip)| Msg::UpdateLoc { configurer, ip }),
        (arb_addr(), arb_addr()).prop_map(|(configurer, ip)| Msg::ReturnAddr { configurer, ip }),
        Just(Msg::ReturnAddrAck),
        (
            prop::collection::vec(arb_block(), 0..4),
            arb_table(),
            arb_addr(),
            prop::collection::vec((arb_addr(), arb_node()), 0..6)
        )
            .prop_map(|(blocks, table, ip, members)| Msg::ReturnBlock {
                blocks,
                table,
                ip,
                members
            }),
        Just(Msg::ReturnBlockAck),
        Just(Msg::Resign),
        arb_addr().prop_map(|new_configurer| Msg::AllocatorChange { new_configurer }),
        (arb_node(), arb_addr(), arb_node(), arb_addr()).prop_map(
            |(target, target_ip, initiator, initiator_ip)| Msg::AddrRec {
                target,
                target_ip,
                initiator,
                initiator_ip
            }
        ),
        (arb_addr(), arb_addr(), arb_node(), arb_node()).prop_map(
            |(target_ip, ip, node, target)| Msg::RecRep {
                target_ip,
                ip,
                node,
                target
            }
        ),
        Just(Msg::RepReq),
        Just(Msg::RepAck),
        (arb_addr(), any::<bool>())
            .prop_map(|(network_id, force)| Msg::Reinit { network_id, force }),
    ]
}

proptest! {
    /// Every encodable message decodes back to itself.
    #[test]
    fn roundtrip(msg in arb_msg()) {
        let bytes = wire::encode(&msg);
        prop_assert_eq!(wire::decode(&bytes).unwrap(), msg);
    }

    /// Truncating an encoded message is always detected (never panics,
    /// never silently succeeds with different content).
    #[test]
    fn truncation_never_panics(msg in arb_msg(), cut in 0usize..64) {
        let bytes = wire::encode(&msg);
        let cut = cut.min(bytes.len().saturating_sub(1));
        let sliced = &bytes[..cut];
        if let Ok(decoded) = wire::decode(sliced) { prop_assert_eq!(decoded, msg, "partial decode equal only if whole") }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode(&bytes);
    }

    /// Encoded length is consistent with `encoded_len`.
    #[test]
    fn encoded_len_matches(msg in arb_msg()) {
        prop_assert_eq!(wire::encoded_len(&msg), wire::encode(&msg).len());
    }
}
