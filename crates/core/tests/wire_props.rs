//! Property-based tests of the wire codec: arbitrary messages round-trip
//! and arbitrary bytes never panic the decoder.

use addrspace::{Addr, AddrBlock, AddrRecord, AddrStatus, AllocationTable};
use manet_sim::NodeId;
use proptest::prelude::*;
use qbac_core::{wire, Msg, QuorumOp};
use quorum::VersionStamp;

fn arb_addr() -> impl Strategy<Value = Addr> {
    any::<u32>().prop_map(Addr::new)
}

fn arb_node() -> impl Strategy<Value = NodeId> {
    any::<u64>().prop_map(NodeId::new)
}

fn arb_block() -> impl Strategy<Value = AddrBlock> {
    (0u32..u32::MAX / 2, 1u32..1_000_000).prop_map(|(base, len)| {
        AddrBlock::new(Addr::new(base), len).expect("bounded block is valid")
    })
}

fn arb_status() -> impl Strategy<Value = AddrStatus> {
    prop_oneof![
        Just(AddrStatus::Free),
        any::<u64>().prop_map(AddrStatus::Allocated),
        Just(AddrStatus::Vacant),
    ]
}

fn arb_record() -> impl Strategy<Value = AddrRecord> {
    (arb_status(), any::<u64>()).prop_map(|(status, s)| AddrRecord {
        status,
        stamp: VersionStamp::new(s),
    })
}

fn arb_table() -> impl Strategy<Value = AllocationTable> {
    prop::collection::vec((arb_addr(), arb_record()), 0..20)
        .prop_map(|entries| entries.into_iter().collect())
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (
            prop::option::of(arb_addr()),
            any::<bool>(),
            prop::option::of(arb_addr())
        )
            .prop_map(|(sender_ip, is_head, network_id)| Msg::Hello {
                sender_ip,
                is_head,
                network_id
            }),
        Just(Msg::ComReq),
        arb_node().prop_map(|requestor| Msg::ComReqFwd { requestor }),
        (
            arb_addr(),
            arb_addr(),
            arb_addr(),
            any::<u32>(),
            any::<u64>()
        )
            .prop_map(
                |(ip, configurer, network_id, spent_hops, auth)| Msg::ComCfg {
                    ip,
                    configurer,
                    network_id,
                    spent_hops,
                    auth
                }
            ),
        Just(Msg::ComAck),
        Just(Msg::ComRej),
        Just(Msg::ChReq),
        any::<u64>().prop_map(|available| Msg::ChPrp { available }),
        Just(Msg::ChCnf),
        (
            arb_block(),
            arb_addr(),
            arb_addr(),
            arb_addr(),
            any::<u32>(),
            prop::collection::vec((arb_addr(), arb_record()), 0..6)
        )
            .prop_map(|(block, ip, configurer, network_id, spent_hops, records)| {
                Msg::ChCfg {
                    block,
                    ip,
                    configurer,
                    network_id,
                    spent_hops,
                    records,
                }
            }),
        Just(Msg::ChAck),
        Just(Msg::ChRej),
        (any::<u64>(), arb_node(), arb_addr()).prop_map(|(seq, owner, addr)| Msg::QuorumClt {
            seq,
            op: QuorumOp::CheckAddr { owner, addr }
        }),
        (any::<u64>(), arb_node()).prop_map(|(seq, owner)| Msg::QuorumClt {
            seq,
            op: QuorumOp::SplitBlock { owner }
        }),
        (
            any::<u64>(),
            arb_node(),
            arb_node(),
            prop::collection::vec(arb_block(), 0..5)
        )
            .prop_map(|(seq, claimant, rival, blocks)| Msg::QuorumClt {
                seq,
                op: QuorumOp::ClaimBlocks {
                    claimant,
                    rival,
                    blocks
                }
            }),
        (any::<u64>(), any::<bool>(), any::<u64>(), any::<u64>()).prop_map(
            |(seq, grant, s, auth)| Msg::QuorumCfm {
                seq,
                grant,
                stamp: VersionStamp::new(s),
                auth
            }
        ),
        (arb_node(), arb_addr(), arb_record(), any::<u64>()).prop_map(
            |(owner, addr, record, auth)| Msg::QuorumCommit {
                owner,
                addr,
                record,
                auth,
            },
        ),
        (
            arb_node(),
            arb_addr(),
            prop::collection::vec(arb_block(), 0..5),
            arb_table(),
            any::<bool>()
        )
            .prop_map(|(owner, owner_ip, blocks, table, reply_requested)| {
                Msg::ReplicaPush {
                    owner,
                    owner_ip,
                    blocks,
                    table,
                    reply_requested,
                }
            }),
        (arb_addr(), arb_addr()).prop_map(|(configurer, ip)| Msg::UpdateLoc { configurer, ip }),
        (arb_addr(), arb_addr()).prop_map(|(configurer, ip)| Msg::ReturnAddr { configurer, ip }),
        Just(Msg::ReturnAddrAck),
        (
            prop::collection::vec(arb_block(), 0..4),
            arb_table(),
            arb_addr(),
            prop::collection::vec((arb_addr(), arb_node()), 0..6)
        )
            .prop_map(|(blocks, table, ip, members)| Msg::ReturnBlock {
                blocks,
                table,
                ip,
                members
            }),
        Just(Msg::ReturnBlockAck),
        Just(Msg::Resign),
        arb_addr().prop_map(|new_configurer| Msg::AllocatorChange { new_configurer }),
        (arb_node(), arb_addr(), arb_node(), arb_addr(), any::<u64>()).prop_map(
            |(target, target_ip, initiator, initiator_ip, auth)| Msg::AddrRec {
                target,
                target_ip,
                initiator,
                initiator_ip,
                auth
            }
        ),
        (arb_addr(), arb_addr(), arb_node(), arb_node()).prop_map(
            |(target_ip, ip, node, target)| Msg::RecRep {
                target_ip,
                ip,
                node,
                target
            }
        ),
        Just(Msg::RepReq),
        Just(Msg::RepAck),
        (arb_addr(), any::<bool>())
            .prop_map(|(network_id, force)| Msg::Reinit { network_id, force }),
        (
            arb_addr(),
            prop::collection::vec(arb_block(), 0..5),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(claimant_ip, blocks, claim_stamp, auth)| Msg::OwnClaim {
                claimant_ip,
                blocks,
                claim_stamp,
                auth,
            }),
        (
            prop::collection::vec(arb_block(), 0..5),
            prop::collection::vec((arb_addr(), arb_record()), 0..6)
        )
            .prop_map(|(blocks, records)| Msg::OwnGrant { blocks, records }),
    ]
}

/// One concrete instance of every `Msg` variant (and of both
/// `QuorumOp` payloads), with non-trivial table payloads where the
/// variant carries one. Paired with `every_variant_round_trips`, which
/// also proves the list is exhaustive over the codec's tag space.
fn one_of_each() -> Vec<Msg> {
    let addr = Addr::new(0x0A00_0001);
    let node = NodeId::new(7);
    let block = AddrBlock::new(Addr::new(0x0A00_0000), 256).expect("valid");
    let record = AddrRecord {
        status: AddrStatus::Allocated(9),
        stamp: VersionStamp::new(3),
    };
    let table: AllocationTable = vec![
        (addr, record),
        (
            Addr::new(0x0A00_0002),
            AddrRecord {
                status: AddrStatus::Vacant,
                stamp: VersionStamp::new(8),
            },
        ),
        (
            Addr::new(0x0A00_0003),
            AddrRecord {
                status: AddrStatus::Free,
                stamp: VersionStamp::new(0),
            },
        ),
    ]
    .into_iter()
    .collect();
    vec![
        Msg::Hello {
            sender_ip: Some(addr),
            is_head: true,
            network_id: None,
        },
        Msg::ComReq,
        Msg::ComReqFwd { requestor: node },
        Msg::ComCfg {
            ip: addr,
            configurer: addr,
            network_id: addr,
            spent_hops: 4,
            auth: 0xfeed,
        },
        Msg::ComAck,
        Msg::ComRej,
        Msg::ChReq,
        Msg::ChPrp { available: 1024 },
        Msg::ChCnf,
        Msg::ChCfg {
            block,
            ip: addr,
            configurer: addr,
            network_id: addr,
            spent_hops: 2,
            records: vec![(addr, record)],
        },
        Msg::ChAck,
        Msg::ChRej,
        Msg::QuorumClt {
            seq: 5,
            op: QuorumOp::CheckAddr { owner: node, addr },
        },
        Msg::QuorumClt {
            seq: 6,
            op: QuorumOp::SplitBlock { owner: node },
        },
        Msg::QuorumClt {
            seq: 7,
            op: QuorumOp::ClaimBlocks {
                claimant: node,
                rival: NodeId::new(9),
                blocks: vec![block],
            },
        },
        Msg::QuorumCfm {
            seq: 5,
            grant: true,
            stamp: VersionStamp::new(11),
            auth: 13,
        },
        Msg::QuorumCommit {
            owner: node,
            addr,
            record,
            auth: 29,
        },
        Msg::ReplicaPush {
            owner: node,
            owner_ip: addr,
            blocks: vec![block],
            table: table.clone(),
            reply_requested: true,
        },
        Msg::UpdateLoc {
            configurer: addr,
            ip: addr,
        },
        Msg::ReturnAddr {
            configurer: addr,
            ip: addr,
        },
        Msg::ReturnAddrAck,
        Msg::ReturnBlock {
            blocks: vec![block],
            table,
            ip: addr,
            members: vec![(addr, node)],
        },
        Msg::ReturnBlockAck,
        Msg::Resign,
        Msg::AllocatorChange {
            new_configurer: addr,
        },
        Msg::AddrRec {
            target: node,
            target_ip: addr,
            initiator: NodeId::new(9),
            initiator_ip: addr,
            auth: 17,
        },
        Msg::RecRep {
            target_ip: addr,
            ip: addr,
            node,
            target: NodeId::new(9),
        },
        Msg::RepReq,
        Msg::RepAck,
        Msg::Reinit {
            network_id: addr,
            force: false,
        },
        Msg::OwnClaim {
            claimant_ip: addr,
            blocks: vec![block],
            claim_stamp: 19,
            auth: 23,
        },
        Msg::OwnGrant {
            blocks: vec![block],
            records: vec![(addr, record)],
        },
    ]
}

/// Deterministic exhaustiveness: every variant round-trips, the sample
/// list covers the codec's whole contiguous tag space, and the first
/// tag past it is still rejected — so adding a message variant without
/// extending this list fails loudly here.
#[test]
fn every_variant_round_trips() {
    let msgs = one_of_each();
    let mut tags: Vec<u8> = Vec::new();
    for msg in &msgs {
        let bytes = wire::encode(msg);
        assert_eq!(&wire::decode(&bytes).unwrap(), msg, "{msg:?}");
        tags.push(bytes[0]);
    }
    tags.sort_unstable();
    tags.dedup();
    let last = *tags.last().expect("non-empty");
    assert_eq!(
        tags,
        (1..=last).collect::<Vec<u8>>(),
        "sample list must cover every tag exactly once"
    );
    assert_eq!(
        wire::decode(&[last + 1]),
        Err(wire::WireError::BadTag(last + 1)),
        "tag space grew: add the new variant to one_of_each()"
    );
}

proptest! {
    /// Every encodable message decodes back to itself.
    #[test]
    fn roundtrip(msg in arb_msg()) {
        let bytes = wire::encode(&msg);
        prop_assert_eq!(wire::decode(&bytes).unwrap(), msg);
    }

    /// Mutation fuzz: flipping bits of a valid encoding never panics
    /// the decoder — it either reports a `WireError` or decodes to some
    /// message that itself round-trips (the codec carries no checksum,
    /// so a payload flip can legally yield a different valid message).
    #[test]
    fn byte_flips_never_panic(
        msg in arb_msg(),
        pos in any::<u64>(),
        mask in 1u16..256,
        extra in prop::option::of((any::<u64>(), 1u16..256)),
    ) {
        let mut bytes = wire::encode(&msg).to_vec();
        let i = (pos % bytes.len() as u64) as usize;
        bytes[i] ^= mask as u8;
        if let Some((pos2, mask2)) = extra {
            let j = (pos2 % bytes.len() as u64) as usize;
            bytes[j] ^= mask2 as u8;
        }
        match wire::decode(&bytes) {
            Err(_) => {} // rejected cleanly
            Ok(decoded) => {
                let re = wire::encode(&decoded);
                prop_assert_eq!(wire::decode(&re).unwrap(), decoded);
            }
        }
    }

    /// Truncating an encoded message is always detected (never panics,
    /// never silently succeeds with different content).
    #[test]
    fn truncation_never_panics(msg in arb_msg(), cut in 0usize..64) {
        let bytes = wire::encode(&msg);
        let cut = cut.min(bytes.len().saturating_sub(1));
        let sliced = &bytes[..cut];
        if let Ok(decoded) = wire::decode(sliced) { prop_assert_eq!(decoded, msg, "partial decode equal only if whole") }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode(&bytes);
    }

    /// Encoded length is consistent with `encoded_len`.
    #[test]
    fn encoded_len_matches(msg in arb_msg()) {
        prop_assert_eq!(wire::encoded_len(&msg), wire::encode(&msg).len());
    }
}
