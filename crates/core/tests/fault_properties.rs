//! Property tests: the quorum protocol's allocation-safety invariant
//! (no duplicate address inside a connected component) must hold under
//! *randomly generated* fault plans, and a fixed seed + plan must
//! reproduce the run bit-for-bit.

use manet_sim::faults::FaultPlan;
use manet_sim::{Metrics, Point, Sim, SimDuration, SimTime, WorldConfig};
use proptest::prelude::*;
use qbac_core::{ProtocolConfig, Qbac};

const NODES: u64 = 8;

/// Builds a fault plan from drawn parameters: uniform loss up to 30%
/// and up to three scheduled cluster-head kills.
fn plan_from(seed: u64, loss: f64, kills: u32) -> FaultPlan {
    let mut plan = FaultPlan::new(seed).with_loss(loss);
    for k in 0..kills {
        // Spread kills across the settled phase of the run.
        let at = SimTime::from_micros(10_000_000 + u64::from(k) * 4_000_000);
        plan = plan.with_head_kill(at, 1);
    }
    plan
}

/// Runs the standard small scenario under `plan` and returns the sim
/// ready for inspection.
fn run_under(plan: FaultPlan, seed: u64) -> Sim<Qbac> {
    let cfg = WorldConfig {
        seed,
        speed: 0.0,
        fault_plan: plan,
        ..WorldConfig::default()
    };
    let mut sim = Sim::new(cfg, Qbac::new(ProtocolConfig::default()));
    for i in 0..NODES {
        sim.run_until(SimTime::from_micros(i * 1_000_000));
        #[allow(clippy::cast_precision_loss)]
        sim.spawn_at(Point::new(
            100.0 + (i % 4) as f64 * 90.0,
            100.0 + (i / 4) as f64 * 90.0,
        ));
    }
    sim.run_for(SimDuration::from_secs(35));
    sim
}

proptest! {
    /// Random loss (≤ 30%) plus up to three head crashes never produce
    /// two alive, mutually reachable nodes holding the same address.
    #[test]
    fn no_duplicate_addresses_under_random_faults(
        seed in 0u64..10_000,
        loss in 0.0f64..0.3,
        kills in 0u32..4,
    ) {
        let mut sim = run_under(plan_from(seed ^ 0xfau64, loss, kills), seed);
        let (world, protocol) = sim.parts_mut();
        let audit = protocol.audit_unique(world);
        prop_assert!(
            audit.is_ok(),
            "duplicates under seed={seed} loss={loss} kills={kills}: {:?}",
            audit.unwrap_err()
        );
    }

    /// The same world seed and the same fault plan reproduce the exact
    /// same metrics, twice in a row.
    #[test]
    fn same_seed_and_plan_reproduce_identical_metrics(
        seed in 0u64..10_000,
        loss in 0.0f64..0.3,
        kills in 0u32..4,
    ) {
        let runs: Vec<Metrics> = (0..2)
            .map(|_| {
                let sim = run_under(plan_from(seed ^ 0xdeu64, loss, kills), seed);
                sim.world().metrics().clone()
            })
            .collect();
        prop_assert_eq!(&runs[0], &runs[1]);
    }
}
