//! Timer semantics survive the mesh transport.
//!
//! Timers never cross the wire — they are a backend-local service — but
//! message arrival *times* drive when handlers arm and cancel them, so
//! a transport that reordered or delayed deliveries would reshuffle the
//! fired-tag sequence. This test runs a protocol that interleaves
//! messaging with zero-delay timers, duplicate arms, and a
//! cancel-after-fire, once per backend, and demands the identical
//! `(virtual-time, tag)` firing sequence.

use manet_sim::{Net, NodeId, Point, Protocol, Sim, SimDuration, TimerId, WireMsg, WorldConfig};
use transport_mesh::MeshShadow;

/// One-byte probe message with a trivial wire codec.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Ping(u8);

impl proto_io::ProtoMsg for Ping {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(self.0);
    }
}

impl WireMsg for Ping {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.push(self.0);
    }
    fn wire_decode(bytes: &[u8]) -> Result<Self, String> {
        match bytes {
            [b] => Ok(Ping(*b)),
            other => Err(format!("ping is one byte, got {}", other.len())),
        }
    }
}

/// Flood-on-join; every received ping arms a duplicate pair of timers
/// (one cancelled), a zero-delay timer, and replies once.
#[derive(Default)]
struct TimerPing {
    fired: Vec<(u64, u64)>,
    replied: bool,
    last_id: Option<TimerId>,
}

impl Protocol for TimerPing {
    type Msg = Ping;

    fn on_join(&mut self, w: &mut Net<'_, Ping>, node: NodeId) {
        let _ = w.flood(node, proto_io::MsgCategory::Configuration, Ping(1));
    }

    fn on_message(&mut self, w: &mut Net<'_, Ping>, to: NodeId, from: NodeId, msg: Ping) {
        // Duplicate arm: both twins would fire; cancel the first.
        let a = w.set_timer(to, SimDuration::from_millis(10), 10);
        let _b = w.set_timer(to, SimDuration::from_millis(10), 10);
        w.cancel_timer(a);
        // Zero-delay: fires this instant, after this handler returns.
        self.last_id = Some(w.set_timer(to, SimDuration::ZERO, 20));
        if msg.0 == 1 && !self.replied {
            self.replied = true;
            let _ = w.unicast(to, from, proto_io::MsgCategory::Configuration, Ping(2));
        }
    }

    fn on_timer(&mut self, w: &mut Net<'_, Ping>, _node: NodeId, tag: u64) {
        self.fired.push((w.now().as_micros(), tag));
        if tag == 20 {
            // Cancel-after-fire: our own id already fired; must be inert.
            if let Some(id) = self.last_id.take() {
                w.cancel_timer(id);
            }
        }
    }
}

fn run(mesh: bool) -> Vec<(u64, u64)> {
    let config = WorldConfig {
        speed: 0.0,
        ..WorldConfig::default()
    };
    let mut sim = Sim::new(config, TimerPing::default());
    if mesh {
        sim.world_mut()
            .set_wire_shadow(Box::new(MeshShadow::<Ping>::new()));
    }
    // A 3-node line under the default radio range; both backends see
    // the same link map, the mesh just carries each hop over UDP.
    sim.spawn_at(Point::new(0.0, 0.0));
    sim.spawn_at(Point::new(60.0, 0.0));
    sim.spawn_at(Point::new(120.0, 0.0));
    sim.run_for(SimDuration::from_secs(2));
    sim.protocol().fired.clone()
}

#[test]
fn fired_sequences_match_across_backends() {
    let plain = run(false);
    let meshed = run(true);
    assert!(
        plain.iter().any(|&(_, tag)| tag == 10) && plain.iter().any(|&(_, tag)| tag == 20),
        "scenario must exercise both the duplicate-arm and zero-delay paths: {plain:?}"
    );
    assert_eq!(
        plain, meshed,
        "timer firing sequence must not depend on the transport backend"
    );
}
