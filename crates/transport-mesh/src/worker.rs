//! The per-node socket task.
//!
//! Each simulated node gets one OS thread owning one UDP socket bound to
//! `127.0.0.1:0`. The thread speaks the protocol's wire encoding: every
//! datagram it accepts is decoded (a relay that cannot parse a message
//! refuses to forward it) and re-encoded before the next hop, so a
//! codec that loses information is caught at the first relay, not at
//! the end of the run.
//!
//! Workers are command-driven over a channel — the coordinator decides
//! *what* moves *where* (it owns the link map); the worker owns the
//! socket I/O. The topology filter lives here: a `Recv` command names
//! the one authorized source address (the link peer), and datagrams
//! from anyone else are dropped and counted, never delivered.

use proto_io::WireMsg;
use std::net::{SocketAddr, UdpSocket};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Duration;

/// How long one blocking read waits before the worker re-checks its
/// receive budget.
const READ_SLICE: Duration = Duration::from_millis(20);

/// Read slices a worker spends waiting for one authorized datagram
/// before reporting a timeout (the coordinator then retries the hop).
const READ_BUDGET: u32 = 50;

/// A command from the coordinator to one node's socket task.
pub(crate) enum Cmd<M> {
    /// Transmit `bytes` as one datagram to `to`.
    Send { to: SocketAddr, bytes: Vec<u8> },
    /// Wait for one datagram from `expect_from` (the link filter),
    /// decode it, and report the outcome on `reply`.
    Recv {
        expect_from: SocketAddr,
        reply: Sender<RecvOutcome<M>>,
    },
    /// Exit the task loop.
    Shutdown,
}

/// What one `Recv` command produced.
pub(crate) enum RecvOutcome<M> {
    /// An authorized datagram arrived and decoded.
    Got {
        /// The decoded message (what this node *understood*).
        msg: M,
        /// The raw bytes as they arrived off the socket.
        bytes: Vec<u8>,
        /// Datagrams dropped by the link filter while waiting.
        filtered: u64,
    },
    /// No authorized datagram arrived within the receive budget.
    TimedOut {
        /// Datagrams dropped by the link filter while waiting.
        filtered: u64,
    },
    /// An authorized datagram arrived but did not parse.
    DecodeError {
        /// The decoder's reason.
        reason: String,
    },
}

/// The socket-task body: runs until `Shutdown` (or the command channel
/// closes, which happens when the coordinator is dropped).
pub(crate) fn run<M: WireMsg>(socket: UdpSocket, commands: Receiver<Cmd<M>>) {
    socket
        .set_read_timeout(Some(READ_SLICE))
        .expect("loopback socket accepts a read timeout");
    let mut buf = [0u8; 65536];
    while let Ok(cmd) = commands.recv() {
        match cmd {
            Cmd::Send { to, bytes } => {
                socket
                    .send_to(&bytes, to)
                    .expect("loopback datagram send succeeds");
            }
            Cmd::Recv { expect_from, reply } => {
                let outcome = recv_one(&socket, &mut buf, expect_from);
                // The coordinator may have given up (retry path); a
                // closed reply channel is not an error.
                let _ = reply.send(outcome);
            }
            Cmd::Shutdown => break,
        }
    }
}

fn recv_one<M: WireMsg>(
    socket: &UdpSocket,
    buf: &mut [u8],
    expect_from: SocketAddr,
) -> RecvOutcome<M> {
    let mut filtered = 0;
    for _ in 0..READ_BUDGET {
        let (len, src) = match socket.recv_from(buf) {
            Ok(ok) => ok,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => panic!("loopback recv failed: {e}"),
        };
        if src != expect_from {
            // Topology filter: not my link peer for this transfer.
            filtered += 1;
            continue;
        }
        let bytes = buf[..len].to_vec();
        return match M::wire_decode(&bytes) {
            Ok(msg) => RecvOutcome::Got {
                msg,
                bytes,
                filtered,
            },
            Err(reason) => RecvOutcome::DecodeError { reason },
        };
    }
    RecvOutcome::TimedOut { filtered }
}
