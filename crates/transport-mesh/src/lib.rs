//! Backend #2 of the sans-io stack: an in-process UDP mesh.
//!
//! The discrete-event simulator ([`manet_sim`]) is backend #1 — it
//! moves typed messages through an event queue and never serializes
//! anything. This crate is backend #2: every node runs as a socket
//! task (one thread, one `UdpSocket` on localhost), and every logical
//! delivery is realized as real datagrams carrying the protocol's wire
//! encoding, relayed hop-by-hop along the simulator's link map. A
//! topology filter at each task drops datagrams that did not come from
//! the authorized link peer, so the mesh cannot cheat the radio range.
//!
//! The mesh plugs in underneath the simulator as a
//! [`WireShadow`](manet_sim::WireShadow): virtual time, RNG streams,
//! timers, and event ordering stay with the simulator, while the
//! message *content* that reaches each recipient is whatever its
//! socket task decoded off the wire. Because the delivered copy is the
//! decoded one, a codec that drops information produces different
//! protocol behaviour — and a transcript divergence — instead of
//! silently passing. That is the property the transcript-differential
//! acceptance suite (in the harness) leans on: byte-identical
//! transcripts across backends prove core, codec, and transports agree
//! end to end.
//!
//! # Quick start
//!
//! ```
//! use manet_sim::{Point, Sim, SimDuration, WorldConfig};
//! use qbac_core::{ProtocolConfig, Qbac};
//! use transport_mesh::MeshShadow;
//!
//! let mut sim = Sim::new(WorldConfig::default(), Qbac::new(ProtocolConfig::default()));
//! sim.world_mut().set_wire_shadow(Box::new(MeshShadow::new()));
//! sim.spawn_at(Point::new(100.0, 100.0));
//! sim.spawn_at(Point::new(180.0, 100.0));
//! sim.run_for(SimDuration::from_secs(2));
//! // Every protocol message just crossed a real UDP socket pair.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod worker;

use manet_sim::WireShadow;
use proto_io::{MsgCategory, NodeId, WireMsg};
use std::collections::HashMap;
use std::fmt;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use worker::{Cmd, RecvOutcome};

/// How long the coordinator waits for one hop's receive report before
/// treating the attempt as failed. Generous against a loaded CI box;
/// loopback transfer itself is microseconds.
const HOP_WAIT: Duration = Duration::from_secs(5);

/// Send attempts per hop before giving up. Loopback UDP loses datagrams
/// only under severe buffer pressure, and the mesh is lockstep (one
/// datagram in flight), so retries are essentially never taken.
const HOP_TRIES: u32 = 3;

/// Transfer counters, exposed for tests and run manifests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshStats {
    /// Datagrams transmitted (one per link traversal, including
    /// self-delivery loopbacks and retries).
    pub datagrams: u64,
    /// Datagrams dropped by the topology filter (wrong source address).
    pub filtered: u64,
    /// Hop attempts retried after a receive timeout.
    pub retries: u64,
}

#[derive(Debug, Default)]
struct SharedStats {
    datagrams: AtomicU64,
    filtered: AtomicU64,
    retries: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> MeshStats {
        MeshStats {
            datagrams: self.datagrams.load(Ordering::Relaxed),
            filtered: self.filtered.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

/// A cloneable view of a mesh's [`MeshStats`] that outlives the shadow
/// handing-off into [`manet_sim::World::set_wire_shadow`] — grab one
/// with [`MeshShadow::stats_handle`] before installing, read it after
/// the run.
#[derive(Clone, Debug)]
pub struct MeshStatsHandle(Arc<SharedStats>);

impl MeshStatsHandle {
    /// The counters as of now.
    #[must_use]
    pub fn snapshot(&self) -> MeshStats {
        self.0.snapshot()
    }
}

struct NodeTask<M> {
    commands: Sender<Cmd<M>>,
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

/// The UDP-mesh shadow transport. Install on a world with
/// [`manet_sim::World::set_wire_shadow`]; see the [crate docs](self).
pub struct MeshShadow<M: WireMsg + Send + 'static> {
    tasks: HashMap<NodeId, NodeTask<M>>,
    stats: Arc<SharedStats>,
}

impl<M: WireMsg + Send + 'static> MeshShadow<M> {
    /// Creates an empty mesh; node tasks spawn lazily the first time a
    /// node appears on a delivery path.
    #[must_use]
    pub fn new() -> Self {
        MeshShadow {
            tasks: HashMap::new(),
            stats: Arc::new(SharedStats::default()),
        }
    }

    /// Transfer counters so far.
    #[must_use]
    pub fn stats(&self) -> MeshStats {
        self.stats.snapshot()
    }

    /// A counters view that stays readable after the shadow is moved
    /// into the world.
    #[must_use]
    pub fn stats_handle(&self) -> MeshStatsHandle {
        MeshStatsHandle(Arc::clone(&self.stats))
    }

    /// The socket address of `node`'s task, if it has one yet. Tests
    /// use this to aim rogue datagrams at the topology filter.
    #[must_use]
    pub fn addr_of(&self, node: NodeId) -> Option<SocketAddr> {
        self.tasks.get(&node).map(|t| t.addr)
    }

    /// Number of node tasks spawned so far.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    fn task(&mut self, node: NodeId) -> &NodeTask<M> {
        self.tasks.entry(node).or_insert_with(|| {
            let socket = UdpSocket::bind("127.0.0.1:0").expect("bind loopback socket");
            let addr = socket.local_addr().expect("bound socket has an address");
            let (tx, rx) = channel();
            let handle = std::thread::Builder::new()
                .name(format!("mesh-{node}"))
                .spawn(move || worker::run::<M>(socket, rx))
                .expect("spawn node task");
            NodeTask {
                commands: tx,
                addr,
                handle: Some(handle),
            }
        })
    }

    /// Moves `bytes` across one link `from → to` and returns the bytes
    /// and decoded message as received by `to`'s task.
    fn hop(&mut self, from: NodeId, to: NodeId, bytes: &[u8]) -> (M, Vec<u8>) {
        let from_addr = self.task(from).addr;
        let to_addr = self.task(to).addr;
        for attempt in 0..HOP_TRIES {
            if attempt > 0 {
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
            }
            let (reply_tx, reply_rx) = channel();
            let recv = Cmd::Recv {
                expect_from: from_addr,
                reply: reply_tx,
            };
            let send = Cmd::Send {
                to: to_addr,
                bytes: bytes.to_vec(),
            };
            if from == to {
                // One task plays both ends: it must transmit before it
                // blocks on the receive (the datagram waits in its own
                // socket buffer).
                self.tasks[&from].commands.send(send).expect("task alive");
                self.tasks[&to].commands.send(recv).expect("task alive");
            } else {
                // Queue the receive first; a datagram that lands before
                // the task reads the command waits in the socket buffer.
                self.tasks[&to].commands.send(recv).expect("task alive");
                self.tasks[&from].commands.send(send).expect("task alive");
            }
            self.stats.datagrams.fetch_add(1, Ordering::Relaxed);
            match reply_rx.recv_timeout(HOP_WAIT) {
                Ok(RecvOutcome::Got {
                    msg,
                    bytes,
                    filtered,
                }) => {
                    self.stats.filtered.fetch_add(filtered, Ordering::Relaxed);
                    return (msg, bytes);
                }
                Ok(RecvOutcome::TimedOut { filtered }) => {
                    self.stats.filtered.fetch_add(filtered, Ordering::Relaxed);
                }
                Ok(RecvOutcome::DecodeError { reason }) => {
                    panic!("mesh hop {from} -> {to}: datagram failed to decode: {reason}")
                }
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                    panic!("mesh hop {from} -> {to}: node task stopped responding")
                }
            }
        }
        panic!("mesh hop {from} -> {to}: no datagram arrived after {HOP_TRIES} attempts")
    }
}

impl<M: WireMsg + Send + 'static> Default for MeshShadow<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: WireMsg + Send + 'static> fmt::Debug for MeshShadow<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MeshShadow")
            .field("tasks", &self.tasks.len())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl<M: WireMsg + Send + 'static> WireShadow<M> for MeshShadow<M> {
    fn carry(&mut self, path: &[NodeId], _category: MsgCategory, msg: &M) -> M {
        let mut bytes = Vec::new();
        msg.wire_encode(&mut bytes);
        let (first, rest) = path.split_first().expect("paths are non-empty");
        if rest.is_empty() {
            // Self-delivery: still cross the socket, so even a node's
            // messages to itself transit the wire encoding.
            let (decoded, _) = self.hop(*first, *first, &bytes);
            return decoded;
        }
        let mut at = *first;
        let mut decoded = None;
        for &next in rest {
            // Store-and-forward: each relay decodes what it received
            // and re-encodes for the next link, exactly like a real
            // forwarding node — corrupt or lossy encodings die at the
            // first relay.
            let (msg, received) = self.hop(at, next, &bytes);
            bytes = received;
            decoded = Some(msg);
            at = next;
        }
        decoded.expect("at least one hop was taken")
    }
}

impl<M: WireMsg + Send + 'static> Drop for MeshShadow<M> {
    fn drop(&mut self) {
        for task in self.tasks.values_mut() {
            let _ = task.commands.send(Cmd::Shutdown);
        }
        for task in self.tasks.values_mut() {
            if let Some(handle) = task.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Echo(u32);

    impl proto_io::ProtoMsg for Echo {
        fn canon(&self, out: &mut Vec<u8>) {
            proto_io::WireMsg::wire_encode(self, out);
        }
    }

    impl WireMsg for Echo {
        fn wire_encode(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.0.to_be_bytes());
        }

        fn wire_decode(bytes: &[u8]) -> Result<Self, String> {
            let arr: [u8; 4] = bytes.try_into().map_err(|_| "need 4 bytes".to_string())?;
            Ok(Echo(u32::from_be_bytes(arr)))
        }
    }

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn single_hop_round_trips_over_a_socket() {
        let mut mesh = MeshShadow::<Echo>::new();
        let got = mesh.carry(&[n(0), n(1)], MsgCategory::Configuration, &Echo(0xBEEF));
        assert_eq!(got, Echo(0xBEEF));
        assert_eq!(mesh.stats().datagrams, 1);
        assert_eq!(mesh.task_count(), 2);
    }

    #[test]
    fn multi_hop_relays_along_the_path() {
        let mut mesh = MeshShadow::<Echo>::new();
        let got = mesh.carry(
            &[n(0), n(1), n(2), n(3)],
            MsgCategory::Maintenance,
            &Echo(7),
        );
        assert_eq!(got, Echo(7));
        assert_eq!(mesh.stats().datagrams, 3, "one datagram per link");
        assert_eq!(mesh.task_count(), 4);
    }

    #[test]
    fn self_delivery_loops_through_own_socket() {
        let mut mesh = MeshShadow::<Echo>::new();
        let got = mesh.carry(&[n(5)], MsgCategory::Configuration, &Echo(42));
        assert_eq!(got, Echo(42));
        assert_eq!(mesh.stats().datagrams, 1);
        assert_eq!(mesh.task_count(), 1);
    }

    #[test]
    fn topology_filter_drops_rogue_datagrams() {
        let mut mesh = MeshShadow::<Echo>::new();
        // Spawn the two tasks and learn the receiver's address.
        mesh.carry(&[n(0), n(1)], MsgCategory::Configuration, &Echo(1));
        let victim = mesh.addr_of(n(1)).expect("task exists");
        // A rogue (not on any link to n1) plants a datagram in n1's
        // socket buffer; the filter must discard it, and the real
        // transfer must still deliver the authentic message.
        let rogue = UdpSocket::bind("127.0.0.1:0").expect("bind rogue");
        let mut forged = Vec::new();
        Echo(0xDEAD).wire_encode(&mut forged);
        rogue.send_to(&forged, victim).expect("send forged");
        let got = mesh.carry(&[n(0), n(1)], MsgCategory::Configuration, &Echo(2));
        assert_eq!(got, Echo(2), "authentic message survives");
        assert_eq!(mesh.stats().filtered, 1, "forged datagram filtered");
    }

    #[test]
    fn reused_tasks_keep_their_sockets() {
        let mut mesh = MeshShadow::<Echo>::new();
        mesh.carry(&[n(0), n(1)], MsgCategory::Configuration, &Echo(1));
        let a0 = mesh.addr_of(n(0));
        mesh.carry(&[n(1), n(0)], MsgCategory::Configuration, &Echo(2));
        assert_eq!(mesh.addr_of(n(0)), a0);
        assert_eq!(mesh.task_count(), 2);
    }
}
