//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serializes through serde — the derives on the data
//! types are forward-looking annotations only. These no-op derive macros
//! keep the annotations compiling without pulling in the real crate.

use proc_macro::TokenStream;

/// Expands to nothing: the annotated type simply does not implement the
/// (empty) `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing, mirroring [`derive_serialize`].
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
