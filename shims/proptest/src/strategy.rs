//! The [`Strategy`] trait and primitive combinators.

use crate::rng::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (for [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    #[allow(clippy::cast_possible_truncation)]
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
