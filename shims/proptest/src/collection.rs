//! Collection strategies (`prop::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::Range;

/// Strategy producing `Vec`s with lengths drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// A vector of values from `elem` with a length in `len`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
