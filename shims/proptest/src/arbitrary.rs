//! `any::<T>()` — full-domain strategies for primitive types.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Returns the full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric values spanning a wide dynamic range.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}
