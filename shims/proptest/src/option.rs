//! Option strategies (`prop::option::of`).

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy producing `Option`s (`None` one time in four).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` from `inner` three times out of four, otherwise `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
