//! Deterministic splitmix64 generator for test-case derivation.

/// A small, fast, deterministic RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary 64-bit value.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds deterministically from a test name (FNV-1a hash).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `n` (0 when `n` is 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Multiply-shift reduction: fine for test generation.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Derives an independent child generator.
    pub fn fork(&mut self) -> TestRng {
        TestRng::new(self.next_u64())
    }
}
