//! Offline mini property-testing harness.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the (small) subset of the `proptest` API the workspace
//! uses: the [`proptest!`] macro, range / tuple / collection / `any`
//! strategies, `prop_map`, `prop_oneof!`, `Just`, and the
//! `prop_assert*` macros. Generation is purely random (no shrinking),
//! seeded deterministically from the test name so failures reproduce.
//!
//! Case count defaults to 64 per property and can be overridden with
//! the `PROPTEST_CASES` environment variable.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod rng;
pub mod strategy;

/// Module named after the upstream `bool` strategy module.
pub mod r#bool {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Number of cases each property runs (env `PROPTEST_CASES`, default 64).
#[must_use]
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    // Upstream re-exports the crate as `prop` so tests can write
    // `prop::collection::vec` and `prop::bool::ANY`.
    pub use crate as prop;
}

/// Declares property tests: each `pat in strategy` argument is drawn
/// freshly for every case and the body is run [`cases()`] times.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::rng::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::cases() {
                    #[allow(unused_parens)]
                    let ($($pat),+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut __rng)),+
                    );
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}
