//! Minimal stand-in for the `bytes` crate: just enough surface for the
//! workspace wire codec (big-endian integer reads/writes over growable
//! and frozen byte buffers). Not a general-purpose replacement.

use std::ops::Deref;

/// Read side: a cursor over bytes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u16`, advancing the cursor.
    fn get_u16(&mut self) -> u16;
    /// Reads a big-endian `u32`, advancing the cursor.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`, advancing the cursor.
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self[..2].try_into().unwrap());
        *self = &self[2..];
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self[..4].try_into().unwrap());
        *self = &self[4..];
        v
    }

    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self[..8].try_into().unwrap());
        *self = &self[8..];
        v
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { buf: self.buf }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    buf: Vec<u8>,
}

impl Bytes {
    /// Empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes { buf: Vec::new() }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        Bytes { buf }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes { buf: s.to_vec() }
    }
}
