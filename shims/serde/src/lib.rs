//! Offline stand-in for `serde`.
//!
//! The workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` for downstream users, but never serializes through
//! serde itself (the wire format in `qbac-core::wire` is hand-rolled,
//! and trace export is hand-rolled JSONL). This crate provides the two
//! names as no-op derives plus empty marker traits so the annotations
//! compile without network access to crates.io.

pub use serde_derive::{Deserialize, Serialize};

/// Empty marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Empty marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
