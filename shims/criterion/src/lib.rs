//! Minimal stand-in for `criterion`: same API shape, trivial timing.
//!
//! Each benchmark closure runs a single timed iteration and reports the
//! wall-clock duration. Good enough to keep `cargo bench` targets
//! compiling and producing ballpark numbers offline; not a statistics
//! engine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name with a parameter value.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark registry.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh registry with default settings.
    #[must_use]
    pub fn new() -> Self {
        Criterion {}
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    /// Runs and reports one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {}/{id}: {:?}", self.name, b.elapsed);
        self
    }

    /// Runs and reports one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        println!("bench {}/{}: {:?}", self.name, id.label, b.elapsed);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
